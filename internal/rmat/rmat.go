// Package rmat implements the R-MAT recursive Kronecker graph generator
// (Chakrabarti, Zhan, Faloutsos 2004) with the Graph 500 parameterization
// used throughout the paper: a=0.59, b=0.19, c=0.19, d=0.05, edgefactor 16.
//
// The generator is deterministic in (seed, scale, edgefactor) and can be
// produced in independent slices, so distributed ranks can each generate
// their share of the edge list without communication — mirroring how the
// Graph 500 reference code generates graphs in parallel.
package rmat

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/prng"
)

// Params configures an R-MAT generator.
type Params struct {
	Scale      int     // log2 of the number of vertices
	EdgeFactor int     // edges per vertex (before symmetrization)
	A, B, C, D float64 // quadrant probabilities; must sum to 1
	Seed       uint64
	// Noise perturbs the quadrant probabilities per recursion level, as the
	// Graph 500 v2 generator does, to avoid degenerate degree spikes.
	// Zero disables perturbation.
	Noise float64
}

// Graph500 returns the parameterization the paper uses: the Graph 500
// defaults with the requested scale and edge factor. The paper quotes
// (a,b,c,d) = (0.59, 0.19, 0.19, 0.05), which sums to 1.02; as in the
// Graph 500 reference generator, d is actually the remainder 1-a-b-c, so
// we use d = 0.03 to keep a, b and c exactly as published.
func Graph500(scale, edgeFactor int, seed uint64) Params {
	const a, b, c = 0.59, 0.19, 0.19
	return Params{
		Scale:      scale,
		EdgeFactor: edgeFactor,
		A:          a, B: b, C: c, D: 1 - a - b - c,
		Seed:  seed,
		Noise: 0.05,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Scale < 1 || p.Scale > 62 {
		return fmt.Errorf("rmat: scale %d out of range [1,62]", p.Scale)
	}
	if p.EdgeFactor < 1 {
		return fmt.Errorf("rmat: edge factor %d < 1", p.EdgeFactor)
	}
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("rmat: probabilities sum to %g, want 1", sum)
	}
	return nil
}

// NumVerts returns 2^Scale.
func (p Params) NumVerts() int64 { return int64(1) << uint(p.Scale) }

// NumEdges returns EdgeFactor * 2^Scale.
func (p Params) NumEdges() int64 { return int64(p.EdgeFactor) << uint(p.Scale) }

// Edge generates the i-th edge of the deterministic sequence. Each edge
// gets its own PRNG stream derived from (Seed, i), so any sub-range can be
// generated independently and the result does not depend on the number of
// generating workers.
func (p Params) Edge(i int64) graph.Edge {
	g := prng.NewStream(p.Seed, uint64(i))
	var u, v int64
	a, b, c := p.A, p.B, p.C
	for level := 0; level < p.Scale; level++ {
		aa, bb, cc := a, b, c
		if p.Noise != 0 {
			// Symmetric multiplicative noise, renormalized. Keeps the
			// expectation at (a,b,c,d) while breaking exact self-similarity.
			na := aa * (1 - p.Noise + 2*p.Noise*g.Float64())
			nb := bb * (1 - p.Noise + 2*p.Noise*g.Float64())
			nc := cc * (1 - p.Noise + 2*p.Noise*g.Float64())
			nd := (1 - aa - bb - cc) * (1 - p.Noise + 2*p.Noise*g.Float64())
			s := na + nb + nc + nd
			aa, bb, cc = na/s, nb/s, nc/s
		}
		r := g.Float64()
		u <<= 1
		v <<= 1
		switch {
		case r < aa:
			// top-left quadrant: no bits set
		case r < aa+bb:
			v |= 1
		case r < aa+bb+cc:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	return graph.Edge{U: u, V: v}
}

// Generate produces the complete edge list (directed; callers symmetrize
// for undirected benchmarks).
func (p Params) Generate() (*graph.EdgeList, error) {
	return p.GenerateRange(0, p.NumEdges())
}

// GenerateRange produces edges [lo, hi) of the deterministic sequence.
func (p Params) GenerateRange(lo, hi int64) (*graph.EdgeList, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if lo < 0 || hi < lo || hi > p.NumEdges() {
		return nil, fmt.Errorf("rmat: range [%d,%d) out of bounds [0,%d)", lo, hi, p.NumEdges())
	}
	edges := make([]graph.Edge, 0, hi-lo)
	for i := lo; i < hi; i++ {
		edges = append(edges, p.Edge(i))
	}
	return &graph.EdgeList{NumVerts: p.NumVerts(), Edges: edges}, nil
}

// Permutation returns the random vertex relabeling used for load balance
// (paper Section 4.4), deterministic in the seed.
func (p Params) Permutation() []int64 {
	g := prng.NewStream(p.Seed, 0xfeedface)
	return g.Perm(p.NumVerts())
}

// GenerateUndirected is the convenience path used by the benchmarks:
// generate, relabel randomly, and symmetrize.
func (p Params) GenerateUndirected() (*graph.EdgeList, error) {
	el, err := p.Generate()
	if err != nil {
		return nil, err
	}
	if err := graph.RelabelEdges(el, p.Permutation()); err != nil {
		return nil, err
	}
	return el.Symmetrize(), nil
}
