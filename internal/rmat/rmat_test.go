package rmat

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestValidate(t *testing.T) {
	if err := Graph500(10, 16, 1).Validate(); err != nil {
		t.Errorf("Graph500 params invalid: %v", err)
	}
	bad := Graph500(10, 16, 1)
	bad.A = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("probabilities summing to 1.31 accepted")
	}
	if err := (Params{Scale: 0, EdgeFactor: 16, A: 1}).Validate(); err == nil {
		t.Error("scale 0 accepted")
	}
	if err := (Params{Scale: 5, EdgeFactor: 0, A: 1}).Validate(); err == nil {
		t.Error("edge factor 0 accepted")
	}
}

func TestCounts(t *testing.T) {
	p := Graph500(8, 16, 7)
	if p.NumVerts() != 256 {
		t.Errorf("NumVerts = %d", p.NumVerts())
	}
	if p.NumEdges() != 4096 {
		t.Errorf("NumEdges = %d", p.NumEdges())
	}
	el, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(el.Edges)) != p.NumEdges() {
		t.Errorf("generated %d edges, want %d", len(el.Edges), p.NumEdges())
	}
	for _, e := range el.Edges {
		if e.U < 0 || e.U >= 256 || e.V < 0 || e.V >= 256 {
			t.Fatalf("edge %v out of range", e)
		}
	}
}

func TestDeterministicAndSliceable(t *testing.T) {
	p := Graph500(9, 8, 99)
	whole, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Generating in 3 arbitrary slices must reproduce the same sequence.
	cuts := []int64{0, 1000, 1001, p.NumEdges()}
	var pieced []graph.Edge
	for i := 0; i+1 < len(cuts); i++ {
		part, err := p.GenerateRange(cuts[i], cuts[i+1])
		if err != nil {
			t.Fatal(err)
		}
		pieced = append(pieced, part.Edges...)
	}
	if len(pieced) != len(whole.Edges) {
		t.Fatalf("pieced %d edges, want %d", len(pieced), len(whole.Edges))
	}
	for i := range pieced {
		if pieced[i] != whole.Edges[i] {
			t.Fatalf("edge %d: %v != %v", i, pieced[i], whole.Edges[i])
		}
	}
}

func TestGenerateRangeBounds(t *testing.T) {
	p := Graph500(6, 4, 1)
	if _, err := p.GenerateRange(-1, 5); err == nil {
		t.Error("negative lo accepted")
	}
	if _, err := p.GenerateRange(10, 5); err == nil {
		t.Error("hi < lo accepted")
	}
	if _, err := p.GenerateRange(0, p.NumEdges()+1); err == nil {
		t.Error("hi beyond edge count accepted")
	}
}

func TestSkewedDegreeDistribution(t *testing.T) {
	// R-MAT with Graph 500 parameters must produce a heavily skewed degree
	// distribution: the max degree far exceeds the mean.
	p := Graph500(12, 16, 5)
	p.Noise = 0 // exact self-similarity maximizes skew; also covers this path
	el, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildCSR(el, false)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Max < 10*int64(st.Mean) {
		t.Errorf("max degree %d not skewed vs mean %.1f", st.Max, st.Mean)
	}
	if st.Isolated == 0 {
		t.Error("R-MAT at scale 12 should leave some vertices isolated")
	}
}

func TestPermutationBijective(t *testing.T) {
	check := func(seed uint64) bool {
		p := Graph500(7, 4, seed)
		perm := p.Permutation()
		if int64(len(perm)) != p.NumVerts() {
			return false
		}
		seen := make([]bool, len(perm))
		for _, v := range perm {
			if v < 0 || v >= int64(len(perm)) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGenerateUndirectedSymmetric(t *testing.T) {
	p := Graph500(8, 8, 3)
	el, err := p.GenerateUndirected()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.BuildCSR(el, true)
	if err != nil {
		t.Fatal(err)
	}
	for u := int64(0); u < g.NumVerts; u++ {
		for _, v := range g.Neighbors(u) {
			found := false
			for _, w := range g.Neighbors(v) {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) has no reverse", u, v)
			}
		}
	}
}

func TestSeedChangesGraph(t *testing.T) {
	a, err := Graph500(8, 4, 1).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Graph500(8, 4, 2).Generate()
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Edges {
		if a.Edges[i] == b.Edges[i] {
			same++
		}
	}
	if same == len(a.Edges) {
		t.Error("different seeds produced identical graphs")
	}
}
