package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the public-domain splitmix64.c with seed 1234567.
	s := NewSplitMix64(1234567)
	got := []uint64{s.Next(), s.Next(), s.Next()}
	want := []uint64{6457827717110365317, 3203168211198807973, 9817491932198370423}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitmix64 output %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: %d != %d", i, av, bv)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a, b := NewStream(42, 0), NewStream(42, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("independent streams agreed on %d of 100 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(7)
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	g := New(11)
	var sum float64
	const iters = 100000
	for i := 0; i < iters; i++ {
		sum += g.Float64()
	}
	mean := sum / iters
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	g := New(3)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := g.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestUint64nUniformSmall(t *testing.T) {
	g := New(5)
	counts := make([]int, 7)
	const iters = 70000
	for i := 0; i < iters; i++ {
		counts[g.Uint64n(7)]++
	}
	for v, c := range counts {
		if c < iters/7*8/10 || c > iters/7*12/10 {
			t.Errorf("value %d occurred %d times, want ~%d", v, c, iters/7)
		}
	}
}

func TestPermIsBijection(t *testing.T) {
	check := func(seed uint64, nRaw uint16) bool {
		n := int64(nRaw%500) + 1
		p := New(seed).Perm(n)
		if int64(len(p)) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	g := New(9)
	v := make([]int, 100)
	for i := range v {
		v[i] = i
	}
	g.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	seen := make([]bool, 100)
	for _, x := range v {
		if seen[x] {
			t.Fatalf("duplicate %d after shuffle", x)
		}
		seen[x] = true
	}
}

func TestJumpDisjoint(t *testing.T) {
	a := New(1)
	b := New(1)
	b.Jump()
	// After a jump, the sequences should not collide in a short window.
	av := make(map[uint64]bool, 1000)
	for i := 0; i < 1000; i++ {
		av[a.Uint64()] = true
	}
	for i := 0; i < 1000; i++ {
		if av[b.Uint64()] {
			t.Fatal("jumped stream collided with base stream")
		}
	}
}

func TestMix64Injective(t *testing.T) {
	seen := make(map[uint64]uint64, 10000)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d", prev, i)
		}
		seen[h] = i
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int64n(0) did not panic")
		}
	}()
	New(1).Int64n(0)
}
