package edgefile

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/prng"
	"repro/internal/rmat"
)

func TestRoundTrip(t *testing.T) {
	el, err := rmat.Graph500(8, 8, 0xe1).Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, el); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVerts != el.NumVerts || len(got.Edges) != len(el.Edges) {
		t.Fatalf("header mismatch: %d/%d vs %d/%d", got.NumVerts, len(got.Edges), el.NumVerts, len(el.Edges))
	}
	for i := range got.Edges {
		if got.Edges[i] != el.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestRoundTripFile(t *testing.T) {
	el := &graph.EdgeList{NumVerts: 5, Edges: []graph.Edge{{U: 0, V: 4}, {U: 3, V: 2}}}
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := WriteFile(path, el); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVerts != 5 || len(got.Edges) != 2 || got.Edges[1] != (graph.Edge{U: 3, V: 2}) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	el := &graph.EdgeList{NumVerts: 3, Edges: []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}}
	var buf bytes.Buffer
	if err := Write(&buf, el); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { c := clone(b); c[0] ^= 0xff; return c }},
		{"truncated header", func(b []byte) []byte { return clone(b)[:12] }},
		{"truncated edges", func(b []byte) []byte { return clone(b)[:len(b)-8] }},
		{"trailing garbage", func(b []byte) []byte { return append(clone(b), 0xaa) }},
		{"out-of-range edge", func(b []byte) []byte {
			c := clone(b)
			// Overwrite the first edge's target with a huge value.
			for i := 0; i < 8; i++ {
				c[len(Magic)+16+8+i] = 0x7f
			}
			return c
		}},
		{"negative counts", func(b []byte) []byte {
			c := clone(b)
			c[len(Magic)+7] = 0x80 // sign bit of the vertex count
			return c
		}},
	}
	for _, tc := range cases {
		if _, err := Read(bytes.NewReader(tc.mutate(good))); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

// Property: arbitrary edge lists survive a round trip bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		n := rng.Int64n(1000) + 1
		el := &graph.EdgeList{NumVerts: n}
		for i := 0; i < rng.Intn(500); i++ {
			el.Edges = append(el.Edges, graph.Edge{U: rng.Int64n(n), V: rng.Int64n(n)})
		}
		var buf bytes.Buffer
		if err := Write(&buf, el); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.NumVerts != el.NumVerts || len(got.Edges) != len(el.Edges) {
			return false
		}
		for i := range got.Edges {
			if got.Edges[i] != el.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
