// Package edgefile reads and writes the repository's binary edge-list
// format, so large generated graphs can be produced once (cmd/graphgen)
// and traversed many times.
//
// Layout, little-endian: the 8-byte magic "PBFSEDG1", an int64 vertex
// count, an int64 edge count, then (u, v) int64 pairs. Files store
// directed edges; consumers symmetrize as the Graph 500 benchmark does.
package edgefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
)

// Magic identifies an edge file.
const Magic = "PBFSEDG1"

// Write streams an edge list to w.
func Write(w io.Writer, el *graph.EdgeList) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, el.NumVerts); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(el.Edges))); err != nil {
		return err
	}
	buf := make([]byte, 16)
	for _, e := range el.Edges {
		binary.LittleEndian.PutUint64(buf[0:], uint64(e.U))
		binary.LittleEndian.PutUint64(buf[8:], uint64(e.V))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes an edge list to the named file.
func WriteFile(path string, el *graph.EdgeList) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, el); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses an edge list from r, validating the header and every edge
// against the declared vertex count.
func Read(r io.Reader) (*graph.EdgeList, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("edgefile: reading magic: %w", err)
	}
	if string(head) != Magic {
		return nil, fmt.Errorf("edgefile: bad magic %q", head)
	}
	var n, m int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("edgefile: reading vertex count: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("edgefile: reading edge count: %w", err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("edgefile: negative header counts n=%d m=%d", n, m)
	}
	el := &graph.EdgeList{NumVerts: n, Edges: make([]graph.Edge, 0, m)}
	buf := make([]byte, 16)
	for i := int64(0); i < m; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("edgefile: truncated at edge %d of %d: %w", i, m, err)
		}
		u := int64(binary.LittleEndian.Uint64(buf[0:]))
		v := int64(binary.LittleEndian.Uint64(buf[8:]))
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("edgefile: edge %d (%d,%d) out of range [0,%d)", i, u, v, n)
		}
		el.Edges = append(el.Edges, graph.Edge{U: u, V: v})
	}
	// Trailing garbage indicates a corrupt or mismatched file.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("edgefile: trailing data after %d edges", m)
	}
	return el, nil
}

// ReadFile reads an edge list from the named file.
func ReadFile(path string) (*graph.EdgeList, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	el, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return el, nil
}
