package spmat

import (
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/prng"
	"repro/internal/smp"
	"repro/internal/spvec"
)

// randMaskFrontier builds a sorted-unique mask frontier over cols columns
// with the given batch width; parents encode the column's global id so
// claims are checkable.
func randMaskFrontier(rng *prng.Xoshiro256, cols, colOff int64, width uint) *spvec.MaskVec {
	f := &spvec.MaskVec{}
	for c := int64(0); c < cols; c++ {
		if rng.Intn(3) != 0 {
			continue
		}
		m := rng.Uint64()
		if width < 64 {
			m &= 1<<width - 1
		}
		if m == 0 {
			m = 1
		}
		f.Append(c, m, colOff+c)
	}
	return f
}

// perSearchVec projects search s of a mask frontier onto a scalar Vec.
func perSearchVec(f *spvec.MaskVec, s uint) *spvec.Vec {
	v := &spvec.Vec{}
	for i, ind := range f.Ind {
		if f.Mask[i]&(1<<s) != 0 {
			v.Append(ind, f.Par[i])
		}
	}
	return v
}

// TestSpMSVMasksMatchesPerSearch checks the batched top-down kernel
// against 64 scalar SpMSV runs: per search, the discovered row sets must
// be identical, every claimed parent must be a frontier column of that
// search adjacent to the row, and no (row, search) pair may be claimed
// twice.
func TestSpMSVMasksMatchesPerSearch(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		rows := rng.Int64n(50) + 1
		cols := rng.Int64n(50) + 1
		width := uint(rng.Intn(64) + 1)
		ts := randTriples(rng, rows, cols, rng.Intn(250))
		d, err := NewDCSC(rows, cols, append([]Triple(nil), ts...))
		if err != nil {
			return false
		}
		f := randMaskFrontier(rng, cols, 100, width)

		var sc MaskScratch
		var dst spvec.MaskVec
		d.SpMSVMasks(&dst, f, &sc)

		adj := make(map[[2]int64]bool) // (row, global col) stored entries
		for j := range d.JC {
			for _, r := range d.colRowsAt(j) {
				adj[[2]int64{r, 100 + d.JC[j]}] = true
			}
		}
		claimed := make(map[[2]int64]int64) // (row, search) -> parent
		for e, r := range dst.Ind {
			if dst.Mask[e] == 0 {
				return false
			}
			for s := uint(0); s < 64; s++ {
				if dst.Mask[e]&(1<<s) == 0 {
					continue
				}
				key := [2]int64{r, int64(s)}
				if _, dup := claimed[key]; dup {
					return false
				}
				if !adj[[2]int64{r, dst.Par[e]}] {
					return false // parent not adjacent to the row
				}
				claimed[key] = dst.Par[e]
			}
		}
		// Per search: claimed rows must equal the scalar kernel's rows,
		// and the claimed parent must be in that search's frontier.
		for s := uint(0); s < width; s++ {
			fv := perSearchVec(f, s)
			inFront := make(map[int64]bool)
			for _, p := range fv.Val {
				inFront[p] = true
			}
			var want spvec.Vec
			d.SpMSV(&want, fv, SpMSVOpts{})
			rowsGot := make(map[int64]bool)
			for key, par := range claimed {
				if key[1] != int64(s) {
					continue
				}
				if !inFront[par] {
					return false
				}
				rowsGot[key[0]] = true
			}
			if len(rowsGot) != len(want.Ind) {
				return false
			}
			for _, r := range want.Ind {
				if !rowsGot[r] {
					return false
				}
			}
		}
		// The shared scan is priced once for the whole batch: never more
		// than the sum of per-search work.
		var perSearchWork int64
		for s := uint(0); s < width; s++ {
			perSearchWork += d.Work(perSearchVec(f, s))
		}
		batched := d.WorkMasks(f)
		return batched <= perSearchWork || perSearchWork == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSpMSVMasksRowSplitMatchesWhole checks that the strip-parallel
// batched product equals the single-strip one per (row, search) claim,
// pooled and serial.
func TestSpMSVMasksRowSplitMatchesWhole(t *testing.T) {
	rng := prng.New(31)
	const rows, cols = 83, 47
	ts := randTriples(rng, rows, cols, 500)
	f := randMaskFrontier(rng, cols, 0, 64)
	whole, err := NewDCSC(rows, cols, append([]Triple(nil), ts...))
	if err != nil {
		t.Fatal(err)
	}
	var want spvec.MaskVec
	whole.SpMSVMasks(&want, f, nil)
	wantClaims := claimSet(&want)

	for _, threads := range []int{2, 4, 7} {
		rs, err := NewRowSplit(rows, cols, append([]Triple(nil), ts...), threads)
		if err != nil {
			t.Fatal(err)
		}
		var msc MaskRowScratch
		pool := smp.NewPool(threads)
		var got spvec.MaskVec
		rs.SpMSVMasks(&got, f, pool, &msc)
		pool.Close()
		if rs.WorkMasks(f) != whole.WorkMasks(f) {
			t.Fatalf("threads=%d: WorkMasks diverges", threads)
		}
		gotClaims := claimSet(&got)
		if len(gotClaims) != len(wantClaims) {
			t.Fatalf("threads=%d: %d claims, want %d", threads, len(gotClaims), len(wantClaims))
		}
		for k := range wantClaims {
			if _, ok := gotClaims[k]; !ok {
				t.Fatalf("threads=%d: claim %v missing", threads, k)
			}
		}
		// Same pool, run twice: deterministic output order.
		pool2 := smp.NewPool(threads)
		var again spvec.MaskVec
		rs.SpMSVMasks(&again, f, pool2, &msc)
		pool2.Close()
		if len(again.Ind) != len(got.Ind) {
			t.Fatalf("threads=%d: nondeterministic entry count", threads)
		}
		for i := range got.Ind {
			if got.Ind[i] != again.Ind[i] || got.Mask[i] != again.Mask[i] || got.Par[i] != again.Par[i] {
				t.Fatalf("threads=%d: nondeterministic entry %d", threads, i)
			}
		}
	}
}

func claimSet(v *spvec.MaskVec) map[[2]int64]bool {
	m := make(map[[2]int64]bool)
	for e, r := range v.Ind {
		for s := uint(0); s < 64; s++ {
			if v.Mask[e]&(1<<s) != 0 {
				m[[2]int64{r, int64(s)}] = true
			}
		}
	}
	return m
}

// TestPullMasksMatchesPerSearch checks the batched pull against the
// scalar pull per search: identical (row, parent) claims, since both
// stop at the ascending-first frontier column.
func TestPullMasksMatchesPerSearch(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		rows := rng.Int64n(50) + 1
		cols := rng.Int64n(50) + 1
		width := uint(rng.Intn(64) + 1)
		visRowOff := rng.Int64n(10)
		colOff := rng.Int64n(10)
		ts := randTriples(rng, rows, cols, rng.Intn(250))
		d, err := NewDCSC(rows, cols, append([]Triple(nil), ts...))
		if err != nil {
			return false
		}
		pv := d.PullView()
		frontier := make([]uint64, colOff+cols)
		visited := make([]uint64, visRowOff+rows)
		lim := uint64(1)<<width - 1
		if width == 64 {
			lim = ^uint64(0)
		}
		for c := range frontier {
			frontier[c] = rng.Uint64() & lim & rng.Uint64()
		}
		for r := range visited {
			visited[r] = rng.Uint64() & lim & rng.Uint64()
		}
		active := rng.Uint64() & lim
		var dst spvec.MaskVec
		scanned := pv.PullMasks(&dst, frontier, visited, active, visRowOff, colOff)
		if scanned < 0 || scanned > d.NNZ() {
			return false
		}
		// Project each search and compare with the scalar kernel.
		for s := uint(0); s < width; s++ {
			fb := bits.NewBitmap(int64(len(frontier)))
			vb := bits.NewBitmap(int64(len(visited)))
			for c := range frontier {
				if frontier[c]&(1<<s) != 0 {
					fb.Set(int64(c))
				}
			}
			for r := range visited {
				if visited[r]&(1<<s) != 0 {
					vb.Set(int64(r))
				}
			}
			var want spvec.Vec
			pv.Pull(&want, fb, vb, visRowOff, colOff)
			got := map[int64]int64{}
			for e, r := range dst.Ind {
				if dst.Mask[e]&(1<<s) != 0 {
					if _, dup := got[r]; dup {
						return false
					}
					got[r] = dst.Par[e]
				}
			}
			if active&(1<<s) == 0 {
				if len(got) != 0 {
					return false // retired search must not discover
				}
				continue
			}
			if len(got) != len(want.Ind) {
				return false
			}
			for i, r := range want.Ind {
				if got[r] != want.Val[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPullMasksEarlyExit pins the batched early exit: one dense row, all
// searches' frontiers holding column 0, must scan exactly one entry.
func TestPullMasksEarlyExit(t *testing.T) {
	var ts []Triple
	for c := int64(0); c < 100; c++ {
		ts = append(ts, Triple{Row: 0, Col: c})
	}
	d, err := NewDCSC(1, 100, ts)
	if err != nil {
		t.Fatal(err)
	}
	frontier := make([]uint64, 100)
	frontier[0] = ^uint64(0)
	visited := make([]uint64, 1)
	var dst spvec.MaskVec
	scanned := d.PullView().PullMasks(&dst, frontier, visited, ^uint64(0), 0, 0)
	if scanned != 1 {
		t.Errorf("early exit scanned %d entries, want 1", scanned)
	}
	if dst.NNZ() != 1 || dst.Ind[0] != 0 || dst.Mask[0] != ^uint64(0) || dst.Par[0] != 0 {
		t.Errorf("unexpected result %+v", dst)
	}
}

// TestPullMasksSplitMatchesWhole checks the strip-parallel batched pull
// against the single-strip one.
func TestPullMasksSplitMatchesWhole(t *testing.T) {
	rng := prng.New(41)
	const rows, cols = 97, 53
	ts := randTriples(rng, rows, cols, 600)
	frontier := make([]uint64, cols)
	visited := make([]uint64, rows)
	for c := range frontier {
		frontier[c] = rng.Uint64() & rng.Uint64()
	}
	for r := range visited {
		visited[r] = rng.Uint64() & rng.Uint64()
	}
	whole, err := NewRowSplit(rows, cols, append([]Triple(nil), ts...), 1)
	if err != nil {
		t.Fatal(err)
	}
	var want spvec.MaskVec
	wantScanned := whole.PullView().PullMasks(&want, frontier, visited, ^uint64(0), 0, 0, nil, nil)

	for _, threads := range []int{2, 4, 7} {
		rs, err := NewRowSplit(rows, cols, append([]Triple(nil), ts...), threads)
		if err != nil {
			t.Fatal(err)
		}
		ps := rs.PullView()
		var scratch MaskPullScratch
		pool := smp.NewPool(threads)
		var got spvec.MaskVec
		scanned := ps.PullMasks(&got, frontier, visited, ^uint64(0), 0, 0, pool, &scratch)
		pool.Close()
		if scanned != wantScanned {
			t.Fatalf("threads=%d: scanned %d, want %d", threads, scanned, wantScanned)
		}
		if len(got.Ind) != len(want.Ind) {
			t.Fatalf("threads=%d: %d entries, want %d", threads, len(got.Ind), len(want.Ind))
		}
		for i := range want.Ind {
			if got.Ind[i] != want.Ind[i] || got.Mask[i] != want.Mask[i] || got.Par[i] != want.Par[i] {
				t.Fatalf("threads=%d: entry %d diverges", threads, i)
			}
		}
	}
}
