package spmat

import (
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/prng"
	"repro/internal/smp"
	"repro/internal/spvec"
)

// randTriples generates a random block pattern.
func randTriples(rng *prng.Xoshiro256, rows, cols int64, m int) []Triple {
	ts := make([]Triple, 0, m)
	for i := 0; i < m; i++ {
		ts = append(ts, Triple{Row: rng.Int64n(rows), Col: rng.Int64n(cols)})
	}
	return ts
}

// pullOracle computes the expected pull result straight from the triple
// definition: for every unvisited row, the smallest frontier in-neighbor
// (the kernel scans columns in ascending order and stops at the first
// hit).
func pullOracle(rows int64, ts []Triple, frontier, visited *bits.Bitmap, visRowOff, colOff int64) *spvec.Vec {
	adj := make(map[int64][]int64)
	seen := make(map[Triple]bool)
	for _, t := range ts {
		if seen[t] {
			continue
		}
		seen[t] = true
		adj[t.Row] = append(adj[t.Row], t.Col)
	}
	out := &spvec.Vec{}
	for r := int64(0); r < rows; r++ {
		if visited.Get(visRowOff + r) {
			continue
		}
		best := int64(-1)
		for _, c := range adj[r] {
			if frontier.Get(colOff+c) && (best == -1 || c < best) {
				best = c
			}
		}
		if best >= 0 {
			out.Append(r, colOff+best)
		}
	}
	return out
}

func vecsEqual(a, b *spvec.Vec) bool {
	if len(a.Ind) != len(b.Ind) {
		return false
	}
	for i := range a.Ind {
		if a.Ind[i] != b.Ind[i] || a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

func TestPullViewRoundTrip(t *testing.T) {
	rng := prng.New(7)
	ts := randTriples(rng, 40, 30, 200)
	d, err := NewDCSC(40, 30, append([]Triple(nil), ts...))
	if err != nil {
		t.Fatal(err)
	}
	pv := d.PullView()
	if pv.NNZ() != d.NNZ() {
		t.Fatalf("pull view nnz %d != dcsc nnz %d", pv.NNZ(), d.NNZ())
	}
	// Every (row, col) present in the DCSC must appear exactly once in
	// the row-major view, with ascending columns per row.
	count := 0
	for r := int64(0); r < 40; r++ {
		prev := int64(-1)
		for k := pv.RowPtr[r]; k < pv.RowPtr[r+1]; k++ {
			c := pv.ColInd[k]
			if c <= prev {
				t.Fatalf("row %d columns not strictly ascending", r)
			}
			prev = c
			count++
		}
	}
	if int64(count) != d.NNZ() {
		t.Fatalf("row pointers cover %d entries, want %d", count, d.NNZ())
	}
}

func TestPullMatchesOracle(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		rows := rng.Int64n(60) + 1
		cols := rng.Int64n(60) + 1
		ts := randTriples(rng, rows, cols, rng.Intn(300))
		visRowOff := rng.Int64n(20)
		colOff := rng.Int64n(20)
		frontier := bits.NewBitmap(colOff + cols)
		visited := bits.NewBitmap(visRowOff + rows)
		for c := int64(0); c < cols; c++ {
			if rng.Intn(3) == 0 {
				frontier.Set(colOff + c)
			}
		}
		for r := int64(0); r < rows; r++ {
			if rng.Intn(4) == 0 {
				visited.Set(visRowOff + r)
			}
		}
		d, err := NewDCSC(rows, cols, append([]Triple(nil), ts...))
		if err != nil {
			return false
		}
		var dst spvec.Vec
		scanned := d.PullView().Pull(&dst, frontier, visited, visRowOff, colOff)
		if scanned < 0 || scanned > d.NNZ() {
			return false
		}
		return vecsEqual(&dst, pullOracle(rows, ts, frontier, visited, visRowOff, colOff))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPullEarlyExitScansLess(t *testing.T) {
	// A single dense row whose first column is in the frontier: the pull
	// must examine exactly one entry.
	var ts []Triple
	for c := int64(0); c < 100; c++ {
		ts = append(ts, Triple{Row: 0, Col: c})
	}
	d, err := NewDCSC(1, 100, ts)
	if err != nil {
		t.Fatal(err)
	}
	frontier := bits.NewBitmap(100)
	frontier.Set(0)
	var dst spvec.Vec
	scanned := d.PullView().Pull(&dst, frontier, bits.NewBitmap(1), 0, 0)
	if scanned != 1 {
		t.Errorf("early exit scanned %d entries, want 1", scanned)
	}
	if dst.NNZ() != 1 || dst.Ind[0] != 0 || dst.Val[0] != 0 {
		t.Errorf("unexpected pull result %+v", dst)
	}
}

// TestPullSplitMatchesWhole checks that the strip-parallel pull over a
// RowSplit equals the single-strip pull, flat and pooled.
func TestPullSplitMatchesWhole(t *testing.T) {
	rng := prng.New(23)
	const rows, cols = 97, 53
	ts := randTriples(rng, rows, cols, 600)
	frontier := bits.NewBitmap(cols)
	visited := bits.NewBitmap(rows)
	for c := int64(0); c < cols; c += 3 {
		frontier.Set(c)
	}
	for r := int64(0); r < rows; r += 5 {
		visited.Set(r)
	}
	whole, err := NewRowSplit(rows, cols, append([]Triple(nil), ts...), 1)
	if err != nil {
		t.Fatal(err)
	}
	var want spvec.Vec
	wantScanned := whole.PullView().Pull(&want, frontier, visited, 0, 0, nil, nil)

	for _, threads := range []int{2, 4, 7} {
		rs, err := NewRowSplit(rows, cols, append([]Triple(nil), ts...), threads)
		if err != nil {
			t.Fatal(err)
		}
		ps := rs.PullView()
		var scratch PullScratch
		pool := smp.NewPool(threads)
		var got spvec.Vec
		scanned := ps.Pull(&got, frontier, visited, 0, 0, pool, &scratch)
		pool.Close()
		if !vecsEqual(&got, &want) {
			t.Fatalf("threads=%d: strip pull diverges from whole pull", threads)
		}
		if scanned != wantScanned {
			t.Fatalf("threads=%d: scanned %d, want %d", threads, scanned, wantScanned)
		}
	}
}
