package spmat

import (
	"repro/internal/smp"
	"repro/internal/spvec"
)

// RowSplit partitions a DCSC rowwise into t strips, the layout the hybrid
// 2D algorithm uses for intra-node multithreading (Section 4.1, Figure 2):
// each thread owns an n/(pr·t) × n/pc hypersparse strip stored in its own
// DCSC, and a level's SpMSV runs one strip per thread with no shared
// mutable state. Strip outputs occupy disjoint, ordered row ranges, so the
// per-strip results concatenate into a sorted vector without a merge.
type RowSplit struct {
	Rows, Cols int64
	Strips     []*DCSC
	Offsets    []int64 // strip s covers rows [Offsets[s], Offsets[s+1])
}

// NewRowSplit builds a t-strip row split from triples.
func NewRowSplit(rows, cols int64, ts []Triple, t int) (*RowSplit, error) {
	if t < 1 {
		t = 1
	}
	if int64(t) > rows && rows > 0 {
		t = int(rows)
	}
	if err := checkTriples(rows, cols, ts); err != nil {
		return nil, err
	}
	rs := &RowSplit{Rows: rows, Cols: cols, Offsets: make([]int64, t+1)}
	for s := 0; s <= t; s++ {
		rs.Offsets[s] = int64(s) * rows / int64(t)
	}
	buckets := make([][]Triple, t)
	for _, tr := range ts {
		s := rs.stripOf(tr.Row)
		buckets[s] = append(buckets[s], Triple{Row: tr.Row - rs.Offsets[s], Col: tr.Col})
	}
	rs.Strips = make([]*DCSC, t)
	for s := 0; s < t; s++ {
		d, err := NewDCSC(rs.Offsets[s+1]-rs.Offsets[s], cols, buckets[s])
		if err != nil {
			return nil, err
		}
		rs.Strips[s] = d
	}
	return rs, nil
}

func (rs *RowSplit) stripOf(row int64) int {
	t := int64(len(rs.Offsets) - 1)
	s := row * t / rs.Rows
	// Integer division of uneven strips can land one off; fix up.
	for s > 0 && row < rs.Offsets[s] {
		s--
	}
	for s+1 < t && row >= rs.Offsets[s+1] {
		s++
	}
	return int(s)
}

// Work returns the number of nonzeros an SpMSV with frontier f would
// touch across all strips.
func (rs *RowSplit) Work(f *spvec.Vec) int64 {
	var work int64
	for _, s := range rs.Strips {
		work += s.Work(f)
	}
	return work
}

// NNZ returns the total stored nonzeros across strips.
func (rs *RowSplit) NNZ() int64 {
	var n int64
	for _, s := range rs.Strips {
		n += s.NNZ()
	}
	return n
}

// RowScratch is the reusable per-rank working state of a RowSplit SpMSV:
// one kernel Scratch and one output vector per strip. Strips own disjoint
// scratches, so the strip-parallel execution shares no mutable state —
// exactly the thread-local accumulators of the hybrid algorithm. The zero
// value is ready to use and resizes lazily to the strip count it meets.
type RowScratch struct {
	parts []spvec.Vec
	per   []Scratch
}

func (rsc *RowScratch) ensure(n int) {
	if len(rsc.parts) < n {
		rsc.parts = append(rsc.parts, make([]spvec.Vec, n-len(rsc.parts))...)
	}
	if len(rsc.per) < n {
		rsc.per = append(rsc.per, make([]Scratch, n-len(rsc.per))...)
	}
}

// SpMSV runs the product strip-parallel and concatenates the rebased
// outputs into dst. A non-nil pool executes one strip per worker — the
// hybrid algorithm's real intra-rank threads; a nil pool runs the strips
// serially (the flat algorithm, which still benefits from the strip
// layout's locality). A non-nil rsc makes steady-state calls
// allocation-free; opts.SPA and opts.Scratch apply per strip only when
// their accumulator matches the strip's row range.
func (rs *RowSplit) SpMSV(dst *spvec.Vec, f *spvec.Vec, opts SpMSVOpts, pool *smp.Pool, rsc *RowScratch) *spvec.Vec {
	n := len(rs.Strips)
	if rsc == nil {
		rsc = &RowScratch{}
	}
	rsc.ensure(n)
	parts := rsc.parts
	parallel := pool != nil && n > 1
	run := func(s int) {
		stripOpts := opts
		stripOpts.Scratch = &rsc.per[s]
		// A caller-provided SPA can serve at most one strip at a time and
		// only if it spans the strip's rows; concurrent strips always use
		// their own scratch accumulators.
		if stripOpts.SPA != nil && (parallel || stripOpts.SPA.Size() != rs.Strips[s].Rows) {
			stripOpts.SPA = nil
		}
		rs.Strips[s].SpMSV(&parts[s], f, stripOpts)
	}
	if parallel {
		pool.Do(n, run)
	} else {
		for s := 0; s < n; s++ {
			run(s)
		}
	}
	dst.Reset()
	for s := range parts[:n] {
		off := rs.Offsets[s]
		for k, r := range parts[s].Ind {
			dst.Ind = append(dst.Ind, r+off)
			dst.Val = append(dst.Val, parts[s].Val[k])
		}
	}
	return dst
}
