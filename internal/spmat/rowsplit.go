package spmat

import "sync"

import "repro/internal/spvec"

// RowSplit partitions a DCSC rowwise into t strips, the layout the hybrid
// 2D algorithm uses for intra-node multithreading (Section 4.1, Figure 2):
// each thread owns an n/(pr·t) × n/pc hypersparse strip stored in its own
// DCSC, and a level's SpMSV runs one strip per thread with no shared
// mutable state. Strip outputs occupy disjoint, ordered row ranges, so the
// per-strip results concatenate into a sorted vector without a merge.
type RowSplit struct {
	Rows, Cols int64
	Strips     []*DCSC
	Offsets    []int64 // strip s covers rows [Offsets[s], Offsets[s+1])
}

// NewRowSplit builds a t-strip row split from triples.
func NewRowSplit(rows, cols int64, ts []Triple, t int) (*RowSplit, error) {
	if t < 1 {
		t = 1
	}
	if int64(t) > rows && rows > 0 {
		t = int(rows)
	}
	if err := checkTriples(rows, cols, ts); err != nil {
		return nil, err
	}
	rs := &RowSplit{Rows: rows, Cols: cols, Offsets: make([]int64, t+1)}
	for s := 0; s <= t; s++ {
		rs.Offsets[s] = int64(s) * rows / int64(t)
	}
	buckets := make([][]Triple, t)
	for _, tr := range ts {
		s := rs.stripOf(tr.Row)
		buckets[s] = append(buckets[s], Triple{Row: tr.Row - rs.Offsets[s], Col: tr.Col})
	}
	rs.Strips = make([]*DCSC, t)
	for s := 0; s < t; s++ {
		d, err := NewDCSC(rs.Offsets[s+1]-rs.Offsets[s], cols, buckets[s])
		if err != nil {
			return nil, err
		}
		rs.Strips[s] = d
	}
	return rs, nil
}

func (rs *RowSplit) stripOf(row int64) int {
	t := int64(len(rs.Offsets) - 1)
	s := row * t / rs.Rows
	// Integer division of uneven strips can land one off; fix up.
	for s > 0 && row < rs.Offsets[s] {
		s--
	}
	for s+1 < t && row >= rs.Offsets[s+1] {
		s++
	}
	return int(s)
}

// Work returns the number of nonzeros an SpMSV with frontier f would
// touch across all strips.
func (rs *RowSplit) Work(f *spvec.Vec) int64 {
	var work int64
	for _, s := range rs.Strips {
		work += s.Work(f)
	}
	return work
}

// NNZ returns the total stored nonzeros across strips.
func (rs *RowSplit) NNZ() int64 {
	var n int64
	for _, s := range rs.Strips {
		n += s.NNZ()
	}
	return n
}

// SpMSV runs the product strip-parallel and concatenates the rebased
// outputs into dst. The parallel flag distinguishes the hybrid algorithm
// (true: one goroutine per strip, as hardware threads in the paper) from
// a flat execution that still benefits from the strip layout's locality.
func (rs *RowSplit) SpMSV(dst *spvec.Vec, f *spvec.Vec, opts SpMSVOpts, parallel bool) *spvec.Vec {
	parts := make([]spvec.Vec, len(rs.Strips))
	if parallel && len(rs.Strips) > 1 {
		var wg sync.WaitGroup
		for s := range rs.Strips {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				stripOpts := opts
				stripOpts.SPA = nil // per-strip accumulators cannot be shared
				rs.Strips[s].SpMSV(&parts[s], f, stripOpts)
			}(s)
		}
		wg.Wait()
	} else {
		for s := range rs.Strips {
			stripOpts := opts
			if stripOpts.SPA != nil && stripOpts.SPA.Size() != rs.Strips[s].Rows {
				stripOpts.SPA = nil
			}
			rs.Strips[s].SpMSV(&parts[s], f, stripOpts)
		}
	}
	dst.Reset()
	for s := range parts {
		off := rs.Offsets[s]
		for k, r := range parts[s].Ind {
			dst.Ind = append(dst.Ind, r+off)
			dst.Val = append(dst.Val, parts[s].Val[k])
		}
	}
	return dst
}
