// Package spmat implements the sparse-matrix storage and the sparse
// matrix-sparse vector product (SpMSV) at the heart of the 2D BFS
// (Algorithm 3). Two column-oriented formats are provided:
//
//   - CSC: classic compressed sparse columns, O(ncols + nnz) storage.
//     Adequate for local blocks of 1D-partitioned matrices.
//   - DCSC: doubly-compressed sparse columns (Buluç & Gilbert 2008),
//     O(nzc + nnz) storage where nzc is the number of nonempty columns.
//     This is the paper's choice for the hypersparse blocks that arise
//     from 2D partitioning, where a CSC column-pointer array per block
//     would cost O(n·√p + m) aggregate instead of O(m) (Section 4.1).
//
// Matrices here are boolean (pattern-only): an entry (r,c) means "column
// vertex c has an edge to row vertex r" in the pre-transposed adjacency
// convention of the paper, so SpMSV with a frontier over columns yields
// the next frontier over rows.
package spmat

import (
	"fmt"
	"sort"
)

// Triple is a matrix nonzero at (Row, Col).
type Triple struct {
	Row, Col int64
}

// CSC is a compressed sparse column pattern matrix.
type CSC struct {
	Rows, Cols int64
	ColPtr     []int64 // len Cols+1
	RowInd     []int64 // len nnz, sorted within each column
}

// NewCSC builds a CSC from triples. Duplicate entries are collapsed.
func NewCSC(rows, cols int64, ts []Triple) (*CSC, error) {
	if err := checkTriples(rows, cols, ts); err != nil {
		return nil, err
	}
	sortTriples(ts)
	colPtr := make([]int64, cols+1)
	rowInd := make([]int64, 0, len(ts))
	for i, t := range ts {
		if i > 0 && t == ts[i-1] {
			continue
		}
		colPtr[t.Col+1]++
		rowInd = append(rowInd, t.Row)
	}
	for c := int64(0); c < cols; c++ {
		colPtr[c+1] += colPtr[c]
	}
	return &CSC{Rows: rows, Cols: cols, ColPtr: colPtr, RowInd: rowInd}, nil
}

// NNZ returns the number of stored nonzeros.
func (m *CSC) NNZ() int64 { return int64(len(m.RowInd)) }

// ColRows returns the sorted row indices of column c.
func (m *CSC) ColRows(c int64) []int64 {
	return m.RowInd[m.ColPtr[c]:m.ColPtr[c+1]]
}

// DCSC is a doubly-compressed sparse column pattern matrix: JC lists the
// nonempty columns (sorted), CP[i]:CP[i+1] brackets the rows of column
// JC[i] within IR.
type DCSC struct {
	Rows, Cols int64
	JC         []int64 // nonempty column ids, sorted, len nzc
	CP         []int64 // len nzc+1
	IR         []int64 // row ids, len nnz, sorted within each column
}

// NewDCSC builds a DCSC from triples. Duplicate entries are collapsed.
func NewDCSC(rows, cols int64, ts []Triple) (*DCSC, error) {
	if err := checkTriples(rows, cols, ts); err != nil {
		return nil, err
	}
	sortTriples(ts)
	m := &DCSC{Rows: rows, Cols: cols}
	for i, t := range ts {
		if i > 0 && t == ts[i-1] {
			continue
		}
		if len(m.JC) == 0 || m.JC[len(m.JC)-1] != t.Col {
			m.JC = append(m.JC, t.Col)
			m.CP = append(m.CP, int64(len(m.IR)))
		}
		m.IR = append(m.IR, t.Row)
	}
	m.CP = append(m.CP, int64(len(m.IR)))
	return m, nil
}

// NNZ returns the number of stored nonzeros.
func (m *DCSC) NNZ() int64 { return int64(len(m.IR)) }

// NZC returns the number of nonempty columns.
func (m *DCSC) NZC() int64 { return int64(len(m.JC)) }

// colRowsAt returns the row indices of the j-th nonempty column.
func (m *DCSC) colRowsAt(j int) []int64 {
	return m.IR[m.CP[j]:m.CP[j+1]]
}

// StorageWords returns the number of 64-bit words the structure occupies,
// used by tests to verify the O(nzc+nnz) vs O(cols+nnz) claims.
func (m *DCSC) StorageWords() int64 {
	return int64(len(m.JC) + len(m.CP) + len(m.IR))
}

// StorageWords returns the number of 64-bit words of the CSC structure.
func (m *CSC) StorageWords() int64 {
	return int64(len(m.ColPtr) + len(m.RowInd))
}

func checkTriples(rows, cols int64, ts []Triple) error {
	if rows < 0 || cols < 0 {
		return fmt.Errorf("spmat: negative dimensions %dx%d", rows, cols)
	}
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return fmt.Errorf("spmat: entry (%d,%d) outside %dx%d", t.Row, t.Col, rows, cols)
		}
	}
	return nil
}

func sortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Col != ts[j].Col {
			return ts[i].Col < ts[j].Col
		}
		return ts[i].Row < ts[j].Row
	})
}
