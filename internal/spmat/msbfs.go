package spmat

import (
	"repro/internal/smp"
	"repro/internal/spvec"
)

// Bit-parallel multi-source kernels (MS-BFS): up to 64 concurrent
// searches share one adjacency scan by carrying a uint64 "active in
// search k" mask per frontier entry / per vertex. One pass over the
// CSR advances every search in the batch, and first-visit resolution is
// atomic-free mask diffing (new = mask &^ visited), so the batched
// kernels cost one edge scan where 64 sequential searches cost 64.

// MaskScratch is the reusable working state of a batched SpMSV: a dense
// accumulated-mask plane over the matrix rows plus the list of touched
// rows, cleared per call in O(touched). The zero value is ready to use
// and resizes lazily to the matrix it meets.
type MaskScratch struct {
	acc     []uint64
	touched []int64
}

func (sc *MaskScratch) accFor(rows int64) []uint64 {
	if int64(len(sc.acc)) != rows {
		sc.acc = make([]uint64, rows)
	}
	return sc.acc
}

// forEachSelectedMask merge-joins a mask frontier's indices (sorted,
// unique) with the nonempty columns JC and invokes fn for each match
// with the position j into JC, the entry's search mask, and its parent
// payload.
func forEachSelectedMask(m *DCSC, f *spvec.MaskVec, fn func(j int, mask uint64, par int64)) {
	i, j := 0, 0
	for i < len(f.Ind) && j < len(m.JC) {
		switch {
		case f.Ind[i] < m.JC[j]:
			i++
		case f.Ind[i] > m.JC[j]:
			j++
		default:
			fn(j, f.Mask[i], f.Par[i])
			i++
			j++
		}
	}
}

// SpMSVMasks computes the batched top-down product: for every frontier
// column c active in searches mask(c), every stored row r of c is
// discovered in the searches not yet accumulated for r this level
// (add = mask(c) &^ acc[r]), and dst receives one (row, add, parent)
// triple per claiming column. Column order fixes the winning parent
// deterministically (ascending frontier index, matching the merge-join
// order). dst is unsorted by row — the batched fold's first-wins merge
// needs no ordering — and entries never carry a zero mask. Local
// duplicate discoveries collapse here, before the fold exchange, the
// same in-node aggregation the scalar SPA performs.
func (m *DCSC) SpMSVMasks(dst *spvec.MaskVec, f *spvec.MaskVec, sc *MaskScratch) *spvec.MaskVec {
	dst.Reset()
	if sc == nil {
		sc = &MaskScratch{}
	}
	acc := sc.accFor(m.Rows)
	forEachSelectedMask(m, f, func(j int, mask uint64, par int64) {
		for _, r := range m.colRowsAt(j) {
			if add := mask &^ acc[r]; add != 0 {
				if acc[r] == 0 {
					sc.touched = append(sc.touched, r)
				}
				acc[r] |= add
				dst.Append(r, add, par)
			}
		}
	})
	for _, r := range sc.touched {
		acc[r] = 0
	}
	sc.touched = sc.touched[:0]
	return dst
}

// WorkMasks returns the number of matrix nonzeros a batched SpMSV with
// frontier f touches: the sum of selected column lengths, counted once
// for the whole batch — the shared-scan quantity the performance model
// and the machine-TEPS accounting charge.
func (m *DCSC) WorkMasks(f *spvec.MaskVec) int64 {
	var work int64
	forEachSelectedMask(m, f, func(j int, _ uint64, _ int64) {
		work += m.CP[j+1] - m.CP[j]
	})
	return work
}

// MaskRowScratch is the reusable per-rank working state of a strip-
// parallel batched SpMSV: one output vector and one mask accumulator
// per strip, so concurrent strips share no mutable state. The zero
// value is ready to use and resizes lazily.
type MaskRowScratch struct {
	parts []spvec.MaskVec
	per   []MaskScratch
}

func (msc *MaskRowScratch) ensure(n int) {
	if len(msc.parts) < n {
		msc.parts = append(msc.parts, make([]spvec.MaskVec, n-len(msc.parts))...)
	}
	if len(msc.per) < n {
		msc.per = append(msc.per, make([]MaskScratch, n-len(msc.per))...)
	}
}

// SpMSVMasks runs the batched product strip-parallel and concatenates
// the rebased outputs into dst in strip order. Strips cover disjoint row
// ranges, so the concatenation introduces no cross-strip duplicates and
// the result is deterministic regardless of worker scheduling. A nil
// pool runs the strips serially; a nil msc allocates fresh scratch.
func (rs *RowSplit) SpMSVMasks(dst *spvec.MaskVec, f *spvec.MaskVec, pool *smp.Pool, msc *MaskRowScratch) *spvec.MaskVec {
	n := len(rs.Strips)
	if msc == nil {
		msc = &MaskRowScratch{}
	}
	msc.ensure(n)
	run := func(s int) {
		rs.Strips[s].SpMSVMasks(&msc.parts[s], f, &msc.per[s])
	}
	if pool != nil && n > 1 {
		pool.Do(n, run)
	} else {
		for s := 0; s < n; s++ {
			run(s)
		}
	}
	dst.Reset()
	for s := 0; s < n; s++ {
		off := rs.Offsets[s]
		p := &msc.parts[s]
		for k, r := range p.Ind {
			dst.Append(r+off, p.Mask[k], p.Par[k])
		}
	}
	return dst
}

// WorkMasks returns the batched touched-nonzero count across strips.
func (rs *RowSplit) WorkMasks(f *spvec.MaskVec) int64 {
	var work int64
	for _, s := range rs.Strips {
		work += s.WorkMasks(f)
	}
	return work
}

// PullMasks runs one batched bottom-up scan over the block: frontier and
// visited are mask planes (one uint64 per vertex; frontier indexed by
// global column id, visited by global row id), and active holds the
// searches still running. A row is scanned only while some active search
// has not visited it (cand = active &^ visited[row]); each adjacency
// entry resolves every candidate search whose frontier holds that column
// in one AND (hit = cand & frontier[c]), emitting (local row, hit,
// column) and shrinking cand until the row's scan stops early — the
// batched generalization of the scalar pull's first-parent exit, and
// per-search it picks the same ascending-first parent. The returned
// count is adjacency entries examined, counted once for the whole batch.
func (m *PullCSR) PullMasks(dst *spvec.MaskVec, frontier, visited []uint64, active uint64, visRowOff, colOff int64) int64 {
	dst.Reset()
	var scanned int64
	for rl := int64(0); rl < m.Rows; rl++ {
		cand := active &^ visited[visRowOff+rl]
		if cand == 0 {
			continue
		}
		for k := m.RowPtr[rl]; k < m.RowPtr[rl+1]; k++ {
			scanned++
			c := colOff + m.ColInd[k]
			if hit := cand & frontier[c]; hit != 0 {
				dst.Append(rl, hit, c)
				cand &^= hit
				if cand == 0 {
					break
				}
			}
		}
	}
	return scanned
}

// MaskPullScratch is the reusable per-rank working state of a strip-
// parallel batched pull. The zero value is ready to use.
type MaskPullScratch struct {
	parts   []spvec.MaskVec
	scanned []int64
}

func (psc *MaskPullScratch) ensure(n int) {
	if len(psc.parts) < n {
		psc.parts = append(psc.parts, make([]spvec.MaskVec, n-len(psc.parts))...)
	}
	if len(psc.scanned) < n {
		psc.scanned = append(psc.scanned, make([]int64, n-len(psc.scanned))...)
	}
}

// PullMasks runs the batched bottom-up scan strip-parallel and
// concatenates the rebased per-strip candidates into dst in strip order
// (ascending block-local row order, one or more entries per row).
// visRowOff is the global id of the block's first row; strip offsets are
// added internally.
func (ps *PullSplit) PullMasks(dst *spvec.MaskVec, frontier, visited []uint64, active uint64, visRowOff, colOff int64, pool *smp.Pool, psc *MaskPullScratch) int64 {
	n := len(ps.Strips)
	if psc == nil {
		psc = &MaskPullScratch{}
	}
	psc.ensure(n)
	run := func(s int) {
		psc.scanned[s] = ps.Strips[s].PullMasks(&psc.parts[s], frontier, visited,
			active, visRowOff+ps.Offsets[s], colOff)
	}
	if pool != nil && n > 1 {
		pool.Do(n, run)
	} else {
		for s := 0; s < n; s++ {
			run(s)
		}
	}
	dst.Reset()
	var scanned int64
	for s := 0; s < n; s++ {
		scanned += psc.scanned[s]
		off := ps.Offsets[s]
		p := &psc.parts[s]
		for k, r := range p.Ind {
			dst.Append(r+off, p.Mask[k], p.Par[k])
		}
	}
	return scanned
}
