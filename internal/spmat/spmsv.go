package spmat

import "repro/internal/spvec"

// Kernel selects the accumulation strategy for SpMSV.
type Kernel int

const (
	// KernelSPA uses the sparse accumulator: O(rows) memory, fastest at
	// low concurrency.
	KernelSPA Kernel = iota
	// KernelHeap uses the multiway heap merge: O(nnz(f)+output) memory,
	// faster and leaner once blocks become hypersparse (high concurrency).
	KernelHeap
	// KernelAuto is the paper's polyalgorithm: pick per call based on the
	// ratio of the accumulator range to the expected output size.
	KernelAuto
)

// String returns the kernel name.
func (k Kernel) String() string {
	switch k {
	case KernelSPA:
		return "spa"
	case KernelHeap:
		return "heap"
	case KernelAuto:
		return "auto"
	}
	return "unknown"
}

// autoThreshold is the range-to-work ratio above which the polyalgorithm
// prefers the heap kernel: when the SPA's dense range is much larger than
// the touched volume, SPA initialization/extraction and its cache
// footprint dominate. The value is calibrated by BenchmarkFigure3 and
// corresponds to the paper's observed crossover near 10k cores on a scale
// 33 problem.
const autoThreshold = 64

// SpMSVOpts configures a product.
type SpMSVOpts struct {
	Kernel Kernel
	// SPA, when non-nil, is reused across calls to avoid reallocating the
	// dense accumulator each BFS level. Its size must equal the matrix
	// row dimension.
	SPA *spvec.SPA
	// Scratch, when non-nil, pools every per-call working structure (the
	// SPA if opts.SPA is unset, the heap kernel's stream list and cursor
	// heap) so steady-state calls allocate nothing. One Scratch serves one
	// matrix at a time; it resizes itself lazily to the matrix it meets.
	Scratch *Scratch
}

// Scratch is the reusable working state of the SpMSV kernels. The zero
// value is ready to use.
type Scratch struct {
	spa     *spvec.SPA
	streams []spvec.Stream
	merge   spvec.MergeScratch
}

// spaFor returns a reusable SPA for a matrix with the given row count,
// (re)allocating only when the row range changes.
func (sc *Scratch) spaFor(rows int64) *spvec.SPA {
	if sc.spa == nil || sc.spa.Size() != rows {
		sc.spa = spvec.NewSPA(rows)
	}
	return sc.spa
}

// SpMSV computes dst = M ⊗ f over the (select,max) semiring: for every
// row r such that some column c with f(c) nonzero has an entry (r,c),
// dst(r) = max over those columns of f's value at c. In BFS terms: f is
// the frontier (value = the frontier vertex's global id), dst holds the
// newly reachable rows with their tentative parents.
func (m *DCSC) SpMSV(dst *spvec.Vec, f *spvec.Vec, opts SpMSVOpts) *spvec.Vec {
	kernel := opts.Kernel
	if kernel == KernelAuto {
		// Estimate touched volume as nnz of selected columns.
		var work int64
		forEachSelected(m, f, func(j int, _ int64) {
			work += m.CP[j+1] - m.CP[j]
		})
		if work == 0 {
			dst.Reset()
			return dst
		}
		if m.Rows/work >= autoThreshold {
			kernel = KernelHeap
		} else {
			kernel = KernelSPA
		}
	}
	switch kernel {
	case KernelSPA:
		spa := opts.SPA
		if spa == nil || spa.Size() != m.Rows {
			if opts.Scratch != nil {
				spa = opts.Scratch.spaFor(m.Rows)
			} else {
				spa = spvec.NewSPA(m.Rows)
			}
		}
		forEachSelected(m, f, func(j int, val int64) {
			for _, r := range m.colRowsAt(j) {
				spa.Scatter(r, val)
			}
		})
		return spa.Extract(dst)
	case KernelHeap:
		var streams []spvec.Stream
		var merge *spvec.MergeScratch
		if opts.Scratch != nil {
			streams = opts.Scratch.streams[:0]
			merge = &opts.Scratch.merge
		} else {
			streams = make([]spvec.Stream, 0, 16)
		}
		forEachSelected(m, f, func(j int, val int64) {
			streams = append(streams, spvec.Stream{Ind: m.colRowsAt(j), Val: val})
		})
		if opts.Scratch != nil {
			opts.Scratch.streams = streams[:0]
		}
		return spvec.MultiwayMergeWith(dst, streams, merge)
	}
	panic("spmat: unknown kernel")
}

// Work returns the number of matrix nonzeros an SpMSV with frontier f
// would touch (the sum of selected column lengths). The performance model
// charges local computation proportionally to this quantity.
func (m *DCSC) Work(f *spvec.Vec) int64 {
	var work int64
	forEachSelected(m, f, func(j int, _ int64) {
		work += m.CP[j+1] - m.CP[j]
	})
	return work
}

// forEachSelected merge-joins the frontier indices with the nonempty
// columns JC (both sorted) and invokes fn for each match with the
// position j into JC and the frontier value.
func forEachSelected(m *DCSC, f *spvec.Vec, fn func(j int, val int64)) {
	i, j := 0, 0
	for i < len(f.Ind) && j < len(m.JC) {
		switch {
		case f.Ind[i] < m.JC[j]:
			i++
		case f.Ind[i] > m.JC[j]:
			j++
		default:
			fn(j, f.Val[i])
			i++
			j++
		}
	}
}

// SpMSV computes dst = M ⊗ f for a CSC matrix; used by tests as an
// independent oracle for the DCSC kernels and by the 1D code paths.
func (m *CSC) SpMSV(dst *spvec.Vec, f *spvec.Vec) *spvec.Vec {
	spa := spvec.NewSPA(m.Rows)
	for i, c := range f.Ind {
		for _, r := range m.ColRows(c) {
			spa.Scatter(r, f.Val[i])
		}
	}
	return spa.Extract(dst)
}
