package spmat

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
	"repro/internal/spvec"
)

// symmetrize mirrors triples across the diagonal and drops self-loops.
func symmetrize(ts []Triple) []Triple {
	out := make([]Triple, 0, 2*len(ts))
	for _, t := range ts {
		if t.Row == t.Col {
			continue
		}
		out = append(out, t, Triple{Row: t.Col, Col: t.Row})
	}
	return out
}

func TestSymMatchesFull(t *testing.T) {
	ts := []Triple{{0, 1}, {1, 3}, {2, 5}, {4, 0}, {3, 2}}
	full, err := NewDCSC(6, 6, symmetrize(ts))
	if err != nil {
		t.Fatal(err)
	}
	sym, err := NewSym(6, symmetrize(ts))
	if err != nil {
		t.Fatal(err)
	}
	if sym.NNZ() != full.NNZ()/2 {
		t.Errorf("triangle nnz = %d, full = %d", sym.NNZ(), full.NNZ())
	}
	f := &spvec.Vec{}
	f.Append(0, 0)
	f.Append(3, 3)
	want := full.SpMSV(&spvec.Vec{}, f, SpMSVOpts{Kernel: KernelSPA})
	got := sym.SpMSV(&spvec.Vec{}, f, SpMSVOpts{Kernel: KernelSPA})
	if got.NNZ() != want.NNZ() {
		t.Fatalf("nnz %d vs %d (%v vs %v)", got.NNZ(), want.NNZ(), got.Ind, want.Ind)
	}
	for i := range got.Ind {
		if got.Ind[i] != want.Ind[i] || got.Val[i] != want.Val[i] {
			t.Fatalf("entry %d: (%d,%d) vs (%d,%d)", i, got.Ind[i], got.Val[i], want.Ind[i], want.Val[i])
		}
	}
}

func TestSymDropsDiagonal(t *testing.T) {
	sym, err := NewSym(4, []Triple{{1, 1}, {2, 2}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if sym.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1 (diagonal dropped)", sym.NNZ())
	}
}

func TestSymHalvesStorage(t *testing.T) {
	rng := prng.New(0x7)
	var ts []Triple
	for i := 0; i < 4000; i++ {
		r, c := rng.Int64n(2000), rng.Int64n(2000)
		if r != c {
			ts = append(ts, Triple{Row: r, Col: c})
		}
	}
	fullTs := symmetrize(ts)
	full, err := NewDCSC(2000, 2000, append([]Triple(nil), fullTs...))
	if err != nil {
		t.Fatal(err)
	}
	sym, err := NewSym(2000, fullTs)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(sym.StorageWords()) / float64(full.StorageWords())
	if ratio > 0.62 {
		t.Errorf("triangle storage is %.0f%% of full, want ~50-60%%", 100*ratio)
	}
}

// Property: triangle SpMSV equals full-matrix SpMSV for all kernels on
// random symmetric matrices and frontiers.
func TestSymProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		dim := int64(rng.Intn(80) + 2)
		var ts []Triple
		for i := 0; i < rng.Intn(200); i++ {
			ts = append(ts, Triple{Row: rng.Int64n(dim), Col: rng.Int64n(dim)})
		}
		fullTs := symmetrize(ts)
		full, err := NewDCSC(dim, dim, append([]Triple(nil), fullTs...))
		if err != nil {
			return false
		}
		sym, err := NewSym(dim, fullTs)
		if err != nil {
			return false
		}
		f := randomFrontier(rng, dim, rng.Intn(20))
		for _, kernel := range []Kernel{KernelSPA, KernelHeap, KernelAuto} {
			want := full.SpMSV(&spvec.Vec{}, f, SpMSVOpts{Kernel: kernel})
			got := sym.SpMSV(&spvec.Vec{}, f, SpMSVOpts{Kernel: kernel})
			if got.NNZ() != want.NNZ() {
				return false
			}
			for i := range got.Ind {
				if got.Ind[i] != want.Ind[i] || got.Val[i] != want.Val[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSymWorkPositive(t *testing.T) {
	sym, err := NewSym(8, []Triple{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	f := &spvec.Vec{}
	f.Append(1, 1)
	if sym.Work(f) <= 0 {
		t.Error("Work should count the transposed scan")
	}
}
