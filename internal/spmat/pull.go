package spmat

import (
	"repro/internal/bits"
	"repro/internal/smp"
	"repro/internal/spvec"
)

// PullCSR is the row-major (CSR) view of a sparse block, the access
// pattern of the bottom-up ("pull") BFS phase: where the column-oriented
// DCSC answers "which rows does frontier column c reach?", the PullCSR
// answers "which columns reach unvisited row r?" so the scan can stop at
// the first frontier parent instead of streaming every edge. RowPtr
// values are absolute offsets into ColInd, which lets sub-views for
// thread chunks alias the same arrays (RowPtr[lo:hi+1] with the full
// ColInd).
type PullCSR struct {
	Rows, Cols int64
	RowPtr     []int64 // len Rows+1, absolute offsets into ColInd
	ColInd     []int64 // column ids, ascending within each row
}

// NewPullCSR wraps existing CSR arrays without copying. The 1D driver
// uses it to present its local in-adjacency to the shared pull kernel.
func NewPullCSR(rows, cols int64, rowPtr, colInd []int64) *PullCSR {
	return &PullCSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColInd: colInd}
}

// NNZ returns the number of stored entries.
func (m *PullCSR) NNZ() int64 { return int64(len(m.ColInd)) }

// SubRows returns a view over rows [lo, hi) sharing the receiver's
// storage; emitted row ids are relative to lo.
func (m *PullCSR) SubRows(lo, hi int64) *PullCSR {
	return &PullCSR{Rows: hi - lo, Cols: m.Cols, RowPtr: m.RowPtr[lo : hi+1], ColInd: m.ColInd}
}

// PullView builds the row-major companion of a DCSC block: a counting
// sort of its entries by row. Column ids come out ascending within each
// row because JC is scanned in ascending order, preserving the
// deterministic first-parent tie-break of the pull scan.
func (m *DCSC) PullView() *PullCSR {
	rowPtr := make([]int64, m.Rows+1)
	for _, r := range m.IR {
		rowPtr[r+1]++
	}
	for r := int64(0); r < m.Rows; r++ {
		rowPtr[r+1] += rowPtr[r]
	}
	colInd := make([]int64, len(m.IR))
	cursor := make([]int64, m.Rows)
	copy(cursor, rowPtr[:m.Rows])
	for j := range m.JC {
		c := m.JC[j]
		for _, r := range m.colRowsAt(j) {
			colInd[cursor[r]] = c
			cursor[r]++
		}
	}
	return &PullCSR{Rows: m.Rows, Cols: m.Cols, RowPtr: rowPtr, ColInd: colInd}
}

// Pull runs one bottom-up scan over the block: every row whose global id
// (visRowOff + local row) is clear in visited has its columns scanned in
// ascending order; the first column whose global id (colOff + local
// column) is set in frontier becomes the row's parent candidate, and the
// scan of that row stops (the bottom-up early exit). dst receives
// (local row, global parent id) pairs in ascending row order. The
// returned count is the number of adjacency entries examined — the
// quantity the direction-optimizing heuristic saves.
func (m *PullCSR) Pull(dst *spvec.Vec, frontier, visited *bits.Bitmap, visRowOff, colOff int64) int64 {
	dst.Reset()
	var scanned int64
	for rl := int64(0); rl < m.Rows; rl++ {
		if visited.Get(visRowOff + rl) {
			continue
		}
		for k := m.RowPtr[rl]; k < m.RowPtr[rl+1]; k++ {
			scanned++
			c := colOff + m.ColInd[k]
			if frontier.Get(c) {
				dst.Ind = append(dst.Ind, rl)
				dst.Val = append(dst.Val, c)
				break
			}
		}
	}
	return scanned
}

// PullSplit is the strip-parallel companion of a RowSplit: one PullCSR
// per row strip, mirroring the thread decomposition of the push-side
// SpMSV so the hybrid variant pulls one strip per worker with no shared
// mutable state.
type PullSplit struct {
	Rows, Cols int64
	Offsets    []int64 // strip s covers rows [Offsets[s], Offsets[s+1])
	Strips     []*PullCSR
}

// PullView builds the row-major views of every strip.
func (rs *RowSplit) PullView() *PullSplit {
	ps := &PullSplit{Rows: rs.Rows, Cols: rs.Cols, Offsets: rs.Offsets}
	ps.Strips = make([]*PullCSR, len(rs.Strips))
	for s, d := range rs.Strips {
		ps.Strips[s] = d.PullView()
	}
	return ps
}

// PullScratch is the reusable per-rank working state of a PullSplit
// scan: one output vector and scanned-edge counter per strip. The zero
// value is ready to use and resizes lazily.
type PullScratch struct {
	parts   []spvec.Vec
	scanned []int64
}

func (psc *PullScratch) ensure(n int) {
	if len(psc.parts) < n {
		psc.parts = append(psc.parts, make([]spvec.Vec, n-len(psc.parts))...)
	}
	if len(psc.scanned) < n {
		psc.scanned = append(psc.scanned, make([]int64, n-len(psc.scanned))...)
	}
}

// Pull runs the bottom-up scan strip-parallel and concatenates the
// rebased per-strip candidates into dst (ascending block-local row
// order, like RowSplit.SpMSV). visRowOff is the global id of the block's
// first row; strip offsets are added internally. A non-nil pool runs one
// strip per worker; a nil psc allocates fresh scratch.
func (ps *PullSplit) Pull(dst *spvec.Vec, frontier, visited *bits.Bitmap, visRowOff, colOff int64, pool *smp.Pool, psc *PullScratch) int64 {
	n := len(ps.Strips)
	if psc == nil {
		psc = &PullScratch{}
	}
	psc.ensure(n)
	run := func(s int) {
		psc.scanned[s] = ps.Strips[s].Pull(&psc.parts[s], frontier, visited,
			visRowOff+ps.Offsets[s], colOff)
	}
	if pool != nil && n > 1 {
		pool.Do(n, run)
	} else {
		for s := 0; s < n; s++ {
			run(s)
		}
	}
	dst.Reset()
	var scanned int64
	for s := 0; s < n; s++ {
		scanned += psc.scanned[s]
		off := ps.Offsets[s]
		for k, r := range psc.parts[s].Ind {
			dst.Ind = append(dst.Ind, r+off)
			dst.Val = append(dst.Val, psc.parts[s].Val[k])
		}
	}
	return scanned
}
