package spmat

import (
	"fmt"

	"repro/internal/spvec"
)

// Sym stores a symmetric boolean matrix as its strict upper triangle
// only, the storage-halving scheme the paper lists as future work
// ("Exploiting symmetry in undirected graphs ... one can save 50% space
// by storing only the upper (or lower) triangle", Section 7). Diagonal
// entries are dropped: self-loops never affect BFS.
//
// SpMSV over the full matrix decomposes into two passes over the stored
// triangle U: the ordinary column product U ⊗ f covers entries above the
// diagonal, and a transposed product Uᵀ ⊗ f — computed by intersecting
// each stored column's row list with the frontier — covers the mirrored
// entries below it. The two partial results merge under (select,max).
type Sym struct {
	Dim int64
	U   *DCSC // strict upper triangle: every entry has Row < Col
}

// NewSym builds symmetric triangle storage from triples. Entries are
// folded into the upper triangle ((r,c) with r > c becomes (c,r));
// diagonal entries are discarded; duplicates collapse.
func NewSym(dim int64, ts []Triple) (*Sym, error) {
	if dim < 0 {
		return nil, fmt.Errorf("spmat: negative dimension %d", dim)
	}
	upper := make([]Triple, 0, len(ts))
	for _, t := range ts {
		switch {
		case t.Row < t.Col:
			upper = append(upper, t)
		case t.Row > t.Col:
			upper = append(upper, Triple{Row: t.Col, Col: t.Row})
		}
	}
	u, err := NewDCSC(dim, dim, upper)
	if err != nil {
		return nil, err
	}
	return &Sym{Dim: dim, U: u}, nil
}

// NNZ returns the number of stored (triangle) nonzeros; the represented
// matrix has twice as many.
func (s *Sym) NNZ() int64 { return s.U.NNZ() }

// StorageWords returns the 64-bit words occupied — roughly half of what
// the full symmetric matrix would need in DCSC form.
func (s *Sym) StorageWords() int64 { return s.U.StorageWords() }

// SpMSV computes dst = A ⊗ f over the (select,max) semiring for the full
// symmetric matrix A represented by the stored triangle.
func (s *Sym) SpMSV(dst *spvec.Vec, f *spvec.Vec, opts SpMSVOpts) *spvec.Vec {
	// Pass 1: the stored upper triangle as-is.
	var up spvec.Vec
	s.U.SpMSV(&up, f, opts)

	// Pass 2: the transposed triangle. For every stored column c, the
	// mirrored entries put column values at row positions: out[c] =
	// max over stored rows r of f(r). Both lists are sorted, so each
	// column costs a linear merge against the frontier.
	var down spvec.Vec
	for j, c := range s.U.JC {
		rows := s.U.colRowsAt(j)
		fi, ri := 0, 0
		var best int64
		found := false
		for fi < len(f.Ind) && ri < len(rows) {
			switch {
			case f.Ind[fi] < rows[ri]:
				fi++
			case f.Ind[fi] > rows[ri]:
				ri++
			default:
				if !found || f.Val[fi] > best {
					best = f.Val[fi]
					found = true
				}
				fi++
				ri++
			}
		}
		if found {
			down.Append(c, best)
		}
	}
	return spvec.Merge(dst, &up, &down)
}

// Work returns the matrix entries an SpMSV with frontier f touches,
// counting both triangle passes.
func (s *Sym) Work(f *spvec.Vec) int64 {
	work := s.U.Work(f)
	// The transposed pass scans every stored column's rows against the
	// frontier; charge the merge length.
	for j := range s.U.JC {
		work += int64(len(s.U.colRowsAt(j)))
	}
	return work
}
