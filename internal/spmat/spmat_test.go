package spmat

import (
	"testing"
	"testing/quick"

	"repro/internal/prng"
	"repro/internal/smp"
	"repro/internal/spvec"
)

// figure2Triples is the example matrix from the paper's Figure 2.
func figure2Triples() []Triple {
	return []Triple{
		{0, 1}, {0, 4}, {1, 0}, {1, 2}, {2, 3}, {2, 5},
		{3, 1}, {3, 2}, {3, 4}, {4, 3}, {5, 0},
	}
}

func TestCSCBasic(t *testing.T) {
	m, err := NewCSC(6, 6, figure2Triples())
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 11 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	got := m.ColRows(1)
	want := []int64{0, 3}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("col 1 rows = %v, want %v", got, want)
	}
	if len(m.ColRows(5)) != 1 {
		t.Errorf("col 5 rows = %v", m.ColRows(5))
	}
}

func TestDCSCMatchesCSC(t *testing.T) {
	ts := figure2Triples()
	c, err := NewCSC(6, 6, append([]Triple(nil), ts...))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDCSC(6, 6, append([]Triple(nil), ts...))
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != d.NNZ() {
		t.Fatalf("nnz mismatch: %d vs %d", c.NNZ(), d.NNZ())
	}
	if d.NZC() != 6 {
		t.Errorf("NZC = %d", d.NZC())
	}
	for j, col := range d.JC {
		got := d.colRowsAt(j)
		want := c.ColRows(col)
		if len(got) != len(want) {
			t.Fatalf("col %d: %v vs %v", col, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("col %d: %v vs %v", col, got, want)
			}
		}
	}
}

func TestDCSCHypersparseStorage(t *testing.T) {
	// A single nonzero in a huge matrix: DCSC storage must be O(1),
	// CSC would be O(cols).
	const dim = 1 << 20
	d, err := NewDCSC(dim, dim, []Triple{{5, 1000000}})
	if err != nil {
		t.Fatal(err)
	}
	if d.StorageWords() > 8 {
		t.Errorf("DCSC storage for 1 nonzero = %d words", d.StorageWords())
	}
	c, err := NewCSC(dim, dim, []Triple{{5, 1000000}})
	if err != nil {
		t.Fatal(err)
	}
	if c.StorageWords() < dim {
		t.Errorf("CSC storage unexpectedly small: %d", c.StorageWords())
	}
}

func TestDuplicateCollapse(t *testing.T) {
	ts := []Triple{{1, 1}, {1, 1}, {1, 1}, {2, 1}}
	d, err := NewDCSC(4, 4, ts)
	if err != nil {
		t.Fatal(err)
	}
	if d.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", d.NNZ())
	}
}

func TestBoundsChecked(t *testing.T) {
	if _, err := NewDCSC(4, 4, []Triple{{4, 0}}); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := NewCSC(4, 4, []Triple{{0, -1}}); err == nil {
		t.Error("negative col accepted")
	}
}

func TestSpMSVFigure2(t *testing.T) {
	d, err := NewDCSC(6, 6, figure2Triples())
	if err != nil {
		t.Fatal(err)
	}
	// Frontier {1, 4} with values equal to indices (BFS convention).
	f := &spvec.Vec{}
	f.Append(1, 1)
	f.Append(4, 4)
	for _, kernel := range []Kernel{KernelSPA, KernelHeap, KernelAuto} {
		out := d.SpMSV(&spvec.Vec{}, f, SpMSVOpts{Kernel: kernel})
		// Col 1 has rows {0,3}; col 4 has rows {0,3}. Union: {0,3} with
		// max value 4.
		if out.NNZ() != 2 || out.Ind[0] != 0 || out.Ind[1] != 3 {
			t.Fatalf("kernel %v: out.Ind = %v", kernel, out.Ind)
		}
		if out.Val[0] != 4 || out.Val[1] != 4 {
			t.Errorf("kernel %v: out.Val = %v, want max semiring value 4", kernel, out.Val)
		}
	}
}

func TestSpMSVEmptyFrontier(t *testing.T) {
	d, err := NewDCSC(6, 6, figure2Triples())
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []Kernel{KernelSPA, KernelHeap, KernelAuto} {
		out := d.SpMSV(&spvec.Vec{}, &spvec.Vec{}, SpMSVOpts{Kernel: kernel})
		if out.NNZ() != 0 {
			t.Errorf("kernel %v: empty frontier produced %d nonzeros", kernel, out.NNZ())
		}
	}
}

func randomTriples(rng *prng.Xoshiro256, rows, cols int64, m int) []Triple {
	ts := make([]Triple, m)
	for i := range ts {
		ts[i] = Triple{rng.Int64n(rows), rng.Int64n(cols)}
	}
	return ts
}

func randomFrontier(rng *prng.Xoshiro256, cols int64, k int) *spvec.Vec {
	ind := make([]int64, k)
	val := make([]int64, k)
	for i := range ind {
		ind[i] = rng.Int64n(cols)
		val[i] = rng.Int64n(1000)
	}
	return spvec.FromUnsorted(ind, val)
}

// Property: all three kernels agree with the CSC oracle on random inputs.
func TestKernelsAgreeWithOracle(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		rows := int64(rng.Intn(100) + 1)
		cols := int64(rng.Intn(100) + 1)
		ts := randomTriples(rng, rows, cols, rng.Intn(300))
		c, err := NewCSC(rows, cols, append([]Triple(nil), ts...))
		if err != nil {
			return false
		}
		d, err := NewDCSC(rows, cols, append([]Triple(nil), ts...))
		if err != nil {
			return false
		}
		f := randomFrontier(rng, cols, rng.Intn(30))
		want := c.SpMSV(&spvec.Vec{}, f)
		for _, kernel := range []Kernel{KernelSPA, KernelHeap, KernelAuto} {
			got := d.SpMSV(&spvec.Vec{}, f, SpMSVOpts{Kernel: kernel})
			if got.NNZ() != want.NNZ() {
				return false
			}
			for i := range got.Ind {
				if got.Ind[i] != want.Ind[i] || got.Val[i] != want.Val[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: row-split SpMSV (sequential and parallel) agrees with the
// unsplit DCSC product.
func TestRowSplitAgrees(t *testing.T) {
	check := func(seed uint64) bool {
		rng := prng.New(seed)
		rows := int64(rng.Intn(120) + 2)
		cols := int64(rng.Intn(80) + 1)
		ts := randomTriples(rng, rows, cols, rng.Intn(400))
		d, err := NewDCSC(rows, cols, append([]Triple(nil), ts...))
		if err != nil {
			return false
		}
		nthreads := rng.Intn(6) + 1
		rs, err := NewRowSplit(rows, cols, append([]Triple(nil), ts...), nthreads)
		if err != nil {
			return false
		}
		if rs.NNZ() != d.NNZ() {
			return false
		}
		f := randomFrontier(rng, cols, rng.Intn(25))
		want := d.SpMSV(&spvec.Vec{}, f, SpMSVOpts{Kernel: KernelSPA})
		pool := smp.NewPool(nthreads)
		defer pool.Close()
		var rsc RowScratch
		for _, p := range []*smp.Pool{nil, pool} {
			// Run twice per mode so scratch reuse is exercised.
			for pass := 0; pass < 2; pass++ {
				got := rs.SpMSV(&spvec.Vec{}, f, SpMSVOpts{Kernel: KernelHeap}, p, &rsc)
				if got.NNZ() != want.NNZ() || !got.IsSorted() {
					return false
				}
				for i := range got.Ind {
					if got.Ind[i] != want.Ind[i] || got.Val[i] != want.Val[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRowSplitStripShapes(t *testing.T) {
	rs, err := NewRowSplit(10, 6, figure2Triples()[:6], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Strips) != 3 {
		t.Fatalf("strip count = %d", len(rs.Strips))
	}
	var total int64
	for s, strip := range rs.Strips {
		if strip.Rows != rs.Offsets[s+1]-rs.Offsets[s] {
			t.Errorf("strip %d rows = %d", s, strip.Rows)
		}
		total += strip.Rows
	}
	if total != 10 {
		t.Errorf("strips cover %d rows, want 10", total)
	}
}

// TestScratchReuseMatchesFresh drives both kernels through a shared
// Scratch across differently shaped matrices and checks against
// scratch-free runs: the pooled SPA, stream list, and cursor heap must
// never leak state between calls.
func TestScratchReuseMatchesFresh(t *testing.T) {
	rng := prng.New(0x5c)
	var sc Scratch
	for round := 0; round < 40; round++ {
		rows := int64(rng.Intn(60) + 2)
		cols := int64(rng.Intn(40) + 1)
		d, err := NewDCSC(rows, cols, randomTriples(rng, rows, cols, rng.Intn(200)))
		if err != nil {
			t.Fatal(err)
		}
		f := randomFrontier(rng, cols, rng.Intn(15))
		for _, kernel := range []Kernel{KernelSPA, KernelHeap, KernelAuto} {
			want := d.SpMSV(&spvec.Vec{}, f, SpMSVOpts{Kernel: kernel})
			got := d.SpMSV(&spvec.Vec{}, f, SpMSVOpts{Kernel: kernel, Scratch: &sc})
			if got.NNZ() != want.NNZ() {
				t.Fatalf("round %d kernel %v: nnz %d != %d", round, kernel, got.NNZ(), want.NNZ())
			}
			for i := range got.Ind {
				if got.Ind[i] != want.Ind[i] || got.Val[i] != want.Val[i] {
					t.Fatalf("round %d kernel %v: entry %d differs", round, kernel, i)
				}
			}
		}
	}
}

func TestSPAReuseAcrossCalls(t *testing.T) {
	d, err := NewDCSC(6, 6, figure2Triples())
	if err != nil {
		t.Fatal(err)
	}
	spa := spvec.NewSPA(6)
	f := &spvec.Vec{}
	f.Append(1, 1)
	a := d.SpMSV(&spvec.Vec{}, f, SpMSVOpts{Kernel: KernelSPA, SPA: spa})
	b := d.SpMSV(&spvec.Vec{}, f, SpMSVOpts{Kernel: KernelSPA, SPA: spa})
	if a.NNZ() != b.NNZ() {
		t.Error("SPA reuse changed result")
	}
}
