package pbfs

// Wall-clock benchmarks of the distributed BFS level loops themselves:
// the graph is generated and distributed once, outside the timer, so
// ns/op and allocs/op measure exactly the per-search steady state (the
// quantity the BENCH_bfs.json trajectory tracks). This is real Go
// execution time, not simulated machine seconds.
//
//	go test -bench=BFSLevelLoop -benchmem

import (
	"runtime"
	"testing"

	"repro/internal/bfs1d"
	"repro/internal/bfs2d"
	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/graph"
	"repro/internal/graph500"
	"repro/internal/netmodel"
	"repro/internal/rmat"
	"repro/internal/spmat"
)

// levelLoopScale is the Graph 500 scale of the benchmark workload: 2^16
// vertices, edge factor 16 (big enough that steady-state levels dominate
// per-search setup).
const levelLoopScale = 16

func levelLoopSource(b *testing.B, el *graph.EdgeList) int64 {
	b.Helper()
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		b.Fatal(err)
	}
	srcs := graph500.SelectSources(ref, 1, 0xbf)
	if len(srcs) == 0 {
		b.Fatal("no usable benchmark source")
	}
	return srcs[0]
}

func benchLevelLoop2D(b *testing.B, ranks, threads int, kernel spmat.Kernel, dir dirheur.Mode, overlap int) {
	b.Helper()
	el, err := rmat.Graph500(levelLoopScale, 16, 0xbf).GenerateUndirected()
	if err != nil {
		b.Fatal(err)
	}
	// The BENCH trajectory rows are pinned to square layouts (the
	// engine accepts any factorization since PR 4).
	pr, pc := cluster.ClosestSquare(ranks)
	if pr != pc {
		b.Fatalf("ranks %d not square", ranks)
	}
	dg, err := bfs2d.Distribute(el, pr, pc, threads)
	if err != nil {
		b.Fatal(err)
	}
	src := levelLoopSource(b, el)
	machine := netmodel.Franklin()
	if dir != dirheur.ModeTopDown {
		dg.Pulls() // static pull views build with distribution, outside the timer
	}
	var arena bfs2d.Arena
	defer arena.Close()
	// The world and grid persist across searches like a session engine's;
	// Reset re-zeroes the clocks each iteration.
	w := cluster.NewWorld(ranks, machine)
	grid := cluster.NewGrid(w, pr, pc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		out, err := bfs2d.Run(w, grid, dg, src, bfs2d.Options{
			Threads: threads, Kernel: kernel, Price: machine, Arena: &arena,
			Direction: dir, OverlapChunks: overlap,
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.TraversedEdges == 0 {
			b.Fatal("benchmark source did no work")
		}
	}
}

func benchLevelLoop1D(b *testing.B, ranks, threads int, dir dirheur.Mode, overlap int) {
	b.Helper()
	el, err := rmat.Graph500(levelLoopScale, 16, 0xbf).GenerateUndirected()
	if err != nil {
		b.Fatal(err)
	}
	dg, err := bfs1d.Distribute(el, ranks)
	if err != nil {
		b.Fatal(err)
	}
	src := levelLoopSource(b, el)
	machine := netmodel.Franklin()
	dg.Symmetric = true // undirected R-MAT: pull aliases the push CSRs
	opt := bfs1d.DefaultOptions()
	opt.Threads = threads
	opt.Price = machine
	opt.Direction = dir
	opt.OverlapChunks = overlap
	opt.Arena = &bfs1d.Arena{}
	defer opt.Arena.Close()
	w := cluster.NewWorld(ranks, machine)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		out := bfs1d.Run(w, dg, src, opt)
		if out.TraversedEdges == 0 {
			b.Fatal("benchmark source did no work")
		}
	}
}

// Top-down-only rows: the PR 1 baselines, and the configuration the
// paper evaluates.
func BenchmarkBFSLevelLoop2DFlat(b *testing.B) {
	benchLevelLoop2D(b, 16, 1, spmat.KernelAuto, dirheur.ModeTopDown, 0)
}
func BenchmarkBFSLevelLoop2DHybrid(b *testing.B) {
	benchLevelLoop2D(b, 16, 4, spmat.KernelAuto, dirheur.ModeTopDown, 0)
}
func BenchmarkBFSLevelLoop1DFlat(b *testing.B)   { benchLevelLoop1D(b, 16, 1, dirheur.ModeTopDown, 0) }
func BenchmarkBFSLevelLoop1DHybrid(b *testing.B) { benchLevelLoop1D(b, 16, 4, dirheur.ModeTopDown, 0) }

// Direction-optimized rows: the library default since PR 2.
func BenchmarkBFSLevelLoop2DFlatAuto(b *testing.B) {
	benchLevelLoop2D(b, 16, 1, spmat.KernelAuto, dirheur.ModeAuto, 0)
}
func BenchmarkBFSLevelLoop1DFlatAuto(b *testing.B) {
	benchLevelLoop1D(b, 16, 1, dirheur.ModeAuto, 0)
}

// Overlapped rows: the chunked nonblocking exchanges (PR 5). These
// track the real wall-clock cost of the pipelined schedule — request
// bookkeeping, chunk splitting, the cross-chunk dedup filter — which
// simulated time does not capture.
func BenchmarkBFSLevelLoop1DFlatAutoOverlap(b *testing.B) {
	benchLevelLoop1D(b, 16, 1, dirheur.ModeAuto, 4)
}
func BenchmarkBFSLevelLoop2DFlatAutoOverlap(b *testing.B) {
	benchLevelLoop2D(b, 16, 1, spmat.KernelAuto, dirheur.ModeAuto, 4)
}

// BenchmarkBFSLevelLoop1DHybridSingleCore isolates the PR 1 regression
// note: pinned to one scheduler thread, the hybrid variant's worker
// team is pure synchronization overhead over the flat loop, so this
// row divided by BenchmarkBFSLevelLoop1DFlat is the single-core hybrid
// tax. The gated BENCH field (hybrid_overhead_1d, scripts/benchcmp) is
// computed from the warm-session ns/op ratio at the host's default
// parallelism — on the single-core CI host that coincides with this
// pinned measurement; on a multicore dev box this benchmark is the way
// to reproduce the single-core tax the field tracks in CI.
func BenchmarkBFSLevelLoop1DHybridSingleCore(b *testing.B) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	benchLevelLoop1D(b, 16, 4, dirheur.ModeTopDown, 0)
}
