package pbfs

// Wall-clock benchmarks of the distributed BFS level loops themselves:
// the graph is generated and distributed once, outside the timer, so
// ns/op and allocs/op measure exactly the per-search steady state (the
// quantity the BENCH_bfs.json trajectory tracks). This is real Go
// execution time, not simulated machine seconds.
//
//	go test -bench=BFSLevelLoop -benchmem

import (
	"runtime"
	"testing"

	"repro/internal/bfs1d"
	"repro/internal/bfs2d"
	"repro/internal/cluster"
	"repro/internal/dirheur"
	"repro/internal/graph"
	"repro/internal/graph500"
	"repro/internal/netmodel"
	"repro/internal/rmat"
	"repro/internal/spmat"
)

// levelLoopScale is the Graph 500 scale of the benchmark workload: 2^16
// vertices, edge factor 16 (big enough that steady-state levels dominate
// per-search setup).
const levelLoopScale = 16

func levelLoopSources(b *testing.B, el *graph.EdgeList, k int) []int64 {
	b.Helper()
	ref, err := graph.BuildCSR(el, true)
	if err != nil {
		b.Fatal(err)
	}
	srcs := graph500.SelectSources(ref, k, 0xbf)
	if len(srcs) < k {
		b.Fatalf("only %d of %d usable benchmark sources", len(srcs), k)
	}
	return srcs
}

func levelLoopSource(b *testing.B, el *graph.EdgeList) int64 {
	b.Helper()
	return levelLoopSources(b, el, 1)[0]
}

func benchLevelLoop2D(b *testing.B, ranks, threads int, kernel spmat.Kernel, dir dirheur.Mode, overlap int) {
	b.Helper()
	el, err := rmat.Graph500(levelLoopScale, 16, 0xbf).GenerateUndirected()
	if err != nil {
		b.Fatal(err)
	}
	// The BENCH trajectory rows are pinned to square layouts (the
	// engine accepts any factorization since PR 4).
	pr, pc := cluster.ClosestSquare(ranks)
	if pr != pc {
		b.Fatalf("ranks %d not square", ranks)
	}
	dg, err := bfs2d.Distribute(el, pr, pc, threads)
	if err != nil {
		b.Fatal(err)
	}
	src := levelLoopSource(b, el)
	machine := netmodel.Franklin()
	if dir != dirheur.ModeTopDown {
		dg.Pulls() // static pull views build with distribution, outside the timer
	}
	var arena bfs2d.Arena
	defer arena.Close()
	// The world and grid persist across searches like a session engine's;
	// Reset re-zeroes the clocks each iteration.
	w := cluster.NewWorld(ranks, machine)
	grid := cluster.NewGrid(w, pr, pc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		out, err := bfs2d.Run(w, grid, dg, src, bfs2d.Options{
			Threads: threads, Kernel: kernel, Price: machine, Arena: &arena,
			Direction: dir, OverlapChunks: overlap,
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.TraversedEdges == 0 {
			b.Fatal("benchmark source did no work")
		}
	}
}

func benchLevelLoop1D(b *testing.B, ranks, threads int, dir dirheur.Mode, overlap int) {
	b.Helper()
	el, err := rmat.Graph500(levelLoopScale, 16, 0xbf).GenerateUndirected()
	if err != nil {
		b.Fatal(err)
	}
	dg, err := bfs1d.Distribute(el, ranks)
	if err != nil {
		b.Fatal(err)
	}
	src := levelLoopSource(b, el)
	machine := netmodel.Franklin()
	dg.Symmetric = true // undirected R-MAT: pull aliases the push CSRs
	opt := bfs1d.DefaultOptions()
	opt.Threads = threads
	opt.Price = machine
	opt.Direction = dir
	opt.OverlapChunks = overlap
	opt.Arena = &bfs1d.Arena{}
	defer opt.Arena.Close()
	w := cluster.NewWorld(ranks, machine)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		out := bfs1d.Run(w, dg, src, opt)
		if out.TraversedEdges == 0 {
			b.Fatal("benchmark source did no work")
		}
	}
}

// Top-down-only rows: the PR 1 baselines, and the configuration the
// paper evaluates.
func BenchmarkBFSLevelLoop2DFlat(b *testing.B) {
	benchLevelLoop2D(b, 16, 1, spmat.KernelAuto, dirheur.ModeTopDown, 0)
}
func BenchmarkBFSLevelLoop2DHybrid(b *testing.B) {
	benchLevelLoop2D(b, 16, 4, spmat.KernelAuto, dirheur.ModeTopDown, 0)
}
func BenchmarkBFSLevelLoop1DFlat(b *testing.B)   { benchLevelLoop1D(b, 16, 1, dirheur.ModeTopDown, 0) }
func BenchmarkBFSLevelLoop1DHybrid(b *testing.B) { benchLevelLoop1D(b, 16, 4, dirheur.ModeTopDown, 0) }

// Direction-optimized rows: the library default since PR 2.
func BenchmarkBFSLevelLoop2DFlatAuto(b *testing.B) {
	benchLevelLoop2D(b, 16, 1, spmat.KernelAuto, dirheur.ModeAuto, 0)
}
func BenchmarkBFSLevelLoop1DFlatAuto(b *testing.B) {
	benchLevelLoop1D(b, 16, 1, dirheur.ModeAuto, 0)
}

// Overlapped rows: the chunked nonblocking exchanges (PR 5). These
// track the real wall-clock cost of the pipelined schedule — request
// bookkeeping, chunk splitting, the cross-chunk dedup filter — which
// simulated time does not capture.
func BenchmarkBFSLevelLoop1DFlatAutoOverlap(b *testing.B) {
	benchLevelLoop1D(b, 16, 1, dirheur.ModeAuto, 4)
}
func BenchmarkBFSLevelLoop2DFlatAutoOverlap(b *testing.B) {
	benchLevelLoop2D(b, 16, 1, spmat.KernelAuto, dirheur.ModeAuto, 4)
}

func benchLevelLoopBatch1D(b *testing.B, scale, ranks, threads, width int) {
	b.Helper()
	el, err := rmat.Graph500(scale, 16, 0xbf).GenerateUndirected()
	if err != nil {
		b.Fatal(err)
	}
	dg, err := bfs1d.Distribute(el, ranks)
	if err != nil {
		b.Fatal(err)
	}
	srcs := levelLoopSources(b, el, width)
	machine := netmodel.Franklin()
	dg.Symmetric = true
	opt := bfs1d.DefaultOptions()
	opt.Threads = threads
	opt.Price = machine
	opt.Direction = dirheur.ModeAuto
	opt.Arena = &bfs1d.Arena{}
	defer opt.Arena.Close()
	w := cluster.NewWorld(ranks, machine)
	// One warm batch builds the word-wide mask planes and exchange
	// buffers, so allocs/op measures exactly the steady state the
	// tentpole promises: level iterations allocation-free, with only
	// the O(width) output assembly left per batch.
	w.Reset()
	if out := bfs1d.RunBatch(w, dg, srcs, opt); out.UniqueTraversedEdges == 0 {
		b.Fatal("warm-up batch did no work")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		out := bfs1d.RunBatch(w, dg, srcs, opt)
		if out.UniqueTraversedEdges == 0 {
			b.Fatal("benchmark batch did no work")
		}
	}
}

func benchLevelLoopBatch2D(b *testing.B, scale, ranks, threads, width int) {
	b.Helper()
	el, err := rmat.Graph500(scale, 16, 0xbf).GenerateUndirected()
	if err != nil {
		b.Fatal(err)
	}
	pr, pc := cluster.ClosestSquare(ranks)
	if pr != pc {
		b.Fatalf("ranks %d not square", ranks)
	}
	dg, err := bfs2d.Distribute(el, pr, pc, threads)
	if err != nil {
		b.Fatal(err)
	}
	srcs := levelLoopSources(b, el, width)
	machine := netmodel.Franklin()
	dg.Pulls() // the batched heuristic may pull; build views outside the timer
	var arena bfs2d.Arena
	defer arena.Close()
	w := cluster.NewWorld(ranks, machine)
	grid := cluster.NewGrid(w, pr, pc)
	opt := bfs2d.Options{
		Threads: threads, Kernel: spmat.KernelAuto, Price: machine,
		Arena: &arena, Direction: dirheur.ModeAuto,
	}
	w.Reset()
	if out, err := bfs2d.RunBatch(w, grid, dg, srcs, opt); err != nil {
		b.Fatal(err)
	} else if out.UniqueTraversedEdges == 0 {
		b.Fatal("warm-up batch did no work")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Reset()
		out, err := bfs2d.RunBatch(w, grid, dg, srcs, opt)
		if err != nil {
			b.Fatal(err)
		}
		if out.UniqueTraversedEdges == 0 {
			b.Fatal("benchmark batch did no work")
		}
	}
}

// Multi-source batch rows (PR 6): 64 searches per mask word through one
// shared level loop. ns/op here is whole-batch time — divide by 64 for
// the amortized per-source figure the BENCH trajectory reports.
func BenchmarkBFSLevelLoop1DFlatBatch64(b *testing.B) {
	benchLevelLoopBatch1D(b, levelLoopScale, 16, 1, 64)
}
func BenchmarkBFSLevelLoop1DHybridBatch64(b *testing.B) {
	benchLevelLoopBatch1D(b, levelLoopScale, 16, 4, 64)
}
func BenchmarkBFSLevelLoop2DFlatBatch64(b *testing.B) {
	benchLevelLoopBatch2D(b, levelLoopScale, 16, 1, 64)
}

// TestBatchLevelLoopAllocationFree is the acceptance gate on the batched
// steady state: with a warm arena, a whole 64-wide batch may allocate
// only its output assembly (the per-search distance/parent planes plus a
// few header slices) — the level iterations themselves must be
// allocation-free. The bound is 4·width+64 mallocs per batch: output
// assembly costs ~2·width inner planes plus O(ranks) headers, so any
// per-level or per-vertex allocation sneaking into the word-wide kernels
// blows through it immediately (a scale-12 R-MAT runs ~8 shared levels
// over 16 ranks; even one malloc per rank per level would add ~128).
func TestBatchLevelLoopAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("testing.Benchmark run too slow for -short")
	}
	const width = 64
	for _, tc := range []struct {
		name  string
		bench func(*testing.B)
	}{
		{"1d-flat", func(b *testing.B) { benchLevelLoopBatch1D(b, 12, 16, 1, width) }},
		{"2d-flat", func(b *testing.B) { benchLevelLoopBatch2D(b, 12, 16, 1, width) }},
	} {
		res := testing.Benchmark(tc.bench)
		if limit := int64(4*width + 64); res.AllocsPerOp() > limit {
			t.Errorf("%s: %d allocs per 64-wide batch exceeds the %d output-assembly bound — a batch level iteration is allocating",
				tc.name, res.AllocsPerOp(), limit)
		}
	}
}

// BenchmarkBFSLevelLoop1DHybridSingleCore isolates the PR 1 regression
// note: pinned to one scheduler thread, the hybrid variant's worker
// team is pure synchronization overhead over the flat loop, so this
// row divided by BenchmarkBFSLevelLoop1DFlat is the single-core hybrid
// tax. The gated BENCH field (hybrid_overhead_1d, scripts/benchcmp) is
// computed from the warm-session ns/op ratio at the host's default
// parallelism — on the single-core CI host that coincides with this
// pinned measurement; on a multicore dev box this benchmark is the way
// to reproduce the single-core tax the field tracks in CI.
func BenchmarkBFSLevelLoop1DHybridSingleCore(b *testing.B) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	benchLevelLoop1D(b, 16, 4, dirheur.ModeTopDown, 0)
}
