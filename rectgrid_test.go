package pbfs

import "testing"

// TestCrossShapeDistances is the rectangular-grid property test: for
// every rank count p in {2, 6, 8, 12, 16} and every factorization
// pr×pc of p, the 2D engine's distances are bit-identical to the 1D
// reference on the same p ranks — and therefore to the square grid
// where one exists (pr == pc is itself one of the factorizations) —
// across all three direction policies.
func TestCrossShapeDistances(t *testing.T) {
	g := testGraph(t)
	src := g.Sources(1, 0x2d)[0]
	for _, p := range []int{2, 6, 8, 12, 16} {
		for _, dir := range []Direction{Auto, TopDownOnly, BottomUpOnly} {
			ref, err := g.BFS(src, Options{Algorithm: OneDFlat, Ranks: p, Machine: "franklin", Direction: dir})
			if err != nil {
				t.Fatalf("p=%d dir=%v: 1D reference: %v", p, dir, err)
			}
			sess := NewSession()
			for pr := 1; pr <= p; pr++ {
				if p%pr != 0 {
					continue
				}
				pc := p / pr
				opt := Options{Algorithm: TwoDFlat, Ranks: p, GridRows: pr, GridCols: pc,
					Machine: "franklin", Direction: dir}
				res, err := sess.Search(g, src, opt)
				if err != nil {
					t.Fatalf("p=%d %dx%d dir=%v: %v", p, pr, pc, dir, err)
				}
				for v := range ref.Dist {
					if res.Dist[v] != ref.Dist[v] {
						t.Fatalf("p=%d %dx%d dir=%v: dist[%d] = %d, 1D reference got %d",
							p, pr, pc, dir, v, res.Dist[v], ref.Dist[v])
					}
				}
				if res.Levels != ref.Levels || res.TraversedEdges != ref.TraversedEdges {
					t.Fatalf("p=%d %dx%d dir=%v: levels/edges %d/%d, 1D reference got %d/%d",
						p, pr, pc, dir, res.Levels, res.TraversedEdges, ref.Levels, ref.TraversedEdges)
				}
				if err := g.Validate(res); err != nil {
					t.Fatalf("p=%d %dx%d dir=%v: %v", p, pr, pc, dir, err)
				}
			}
			sess.Close()
		}
	}
}

// TestRectGridSessionKeys checks that the grid shape is part of the
// engine cache key: the same rank count under two shapes builds two
// engines (two distributions), while the derived closest-square shape
// and its explicit spelling share one.
func TestRectGridSessionKeys(t *testing.T) {
	g := testGraph(t)
	src := g.Sources(1, 9)[0]
	sess := NewSession()
	defer sess.Close()
	search := func(opt Options) {
		t.Helper()
		if _, err := sess.Search(g, src, opt); err != nil {
			t.Fatal(err)
		}
	}
	before := distributions.Load()
	search(Options{Algorithm: TwoDFlat, Ranks: 6})                           // derived 2x3
	search(Options{Algorithm: TwoDFlat, Ranks: 6, GridRows: 2, GridCols: 3}) // same engine
	search(Options{Algorithm: TwoDFlat, Ranks: 6, GridRows: 2})              // inferred 2x3: same engine
	if got := distributions.Load() - before; got != 1 {
		t.Errorf("equivalent 2x3 spellings performed %d distributions, want 1", got)
	}
	before = distributions.Load()
	search(Options{Algorithm: TwoDFlat, Ranks: 6, GridRows: 3, GridCols: 2}) // different shape
	if got := distributions.Load() - before; got != 1 {
		t.Errorf("changed grid shape performed %d distributions, want 1", got)
	}
	// A fully specified grid implies its rank count: no Ranks needed,
	// and the spelling shares the engine with the explicit one.
	before = distributions.Load()
	search(Options{Algorithm: TwoDFlat, GridRows: 3, GridCols: 2})
	if got := distributions.Load() - before; got != 0 {
		t.Errorf("grid-implied rank count performed %d distributions, want 0 (cached 3x2 engine)", got)
	}
}
