package pbfs

import "testing"

func TestBenchmarkProtocol(t *testing.T) {
	g := testGraph(t)
	st, err := g.Benchmark(Options{Algorithm: TwoDHybrid, Ranks: 9, Machine: "hopper"}, 5, 0x77)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSearches != 5 {
		t.Errorf("NumSearches = %d", st.NumSearches)
	}
	if st.HarmonicMeanTEPS <= 0 || st.MeanTime <= 0 {
		t.Errorf("empty stats: %+v", st)
	}
	if st.MinTime > st.MedianTime || st.MedianTime > st.MaxTime {
		t.Errorf("time ordering broken: %+v", st)
	}
	if st.MinTEPS > st.HarmonicMeanTEPS || st.HarmonicMeanTEPS > st.MaxTEPS {
		t.Errorf("TEPS ordering broken: %+v", st)
	}
	if st.MeanCommTime <= 0 || st.MeanCommTime >= st.MeanTime {
		t.Errorf("comm time %v outside (0, %v)", st.MeanCommTime, st.MeanTime)
	}
	if st.MeanLevels < 2 {
		t.Errorf("MeanLevels = %v", st.MeanLevels)
	}
}

func TestBenchmarkDefaultsAndErrors(t *testing.T) {
	g := testGraph(t)
	// k < 1 defaults to the paper's 16 searches.
	st, err := g.Benchmark(Options{Algorithm: OneDFlat, Ranks: 4, Machine: "franklin"}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSearches != 16 {
		t.Errorf("default searches = %d, want 16", st.NumSearches)
	}
	// A bad option surfaces as an error, not a panic.
	if _, err := g.Benchmark(Options{Algorithm: TwoDFlat, Ranks: 7, GridRows: 3}, 2, 1); err == nil {
		t.Error("ranks not factorable into the requested grid accepted")
	}
}

func TestBenchmarkConsistentAcrossAlgorithms(t *testing.T) {
	// All variants must agree on levels and traversed work, so the mean
	// levels statistic must be identical.
	g := testGraph(t)
	var levels []float64
	for _, algo := range []Algorithm{OneDFlat, TwoDFlat} {
		ranks := 4
		st, err := g.Benchmark(Options{Algorithm: algo, Ranks: ranks, Machine: "franklin"}, 4, 0x99)
		if err != nil {
			t.Fatal(err)
		}
		levels = append(levels, st.MeanLevels)
	}
	if levels[0] != levels[1] {
		t.Errorf("mean levels differ across algorithms: %v", levels)
	}
}
