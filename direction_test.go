package pbfs

import "testing"

// directionsAgree runs one search under all three direction policies,
// validates each result, and checks that distances (and therefore the
// level structure) are identical — parents may differ between push and
// pull but every tree must pass the oracle.
func directionsAgree(t *testing.T, g *Graph, src int64, opt Options) map[Direction]*Result {
	t.Helper()
	out := map[Direction]*Result{}
	for _, dir := range []Direction{Auto, TopDownOnly, BottomUpOnly} {
		o := opt
		o.Direction = dir
		res, err := g.BFS(src, o)
		if err != nil {
			t.Fatalf("%v/%v: %v", opt.Algorithm, dir, err)
		}
		if err := g.Validate(res); err != nil {
			t.Fatalf("%v/%v failed validation: %v", opt.Algorithm, dir, err)
		}
		out[dir] = res
	}
	td := out[TopDownOnly]
	for _, dir := range []Direction{Auto, BottomUpOnly} {
		for v := range td.Dist {
			if out[dir].Dist[v] != td.Dist[v] {
				t.Fatalf("%v/%v: dist[%d] = %d, want %d", opt.Algorithm, dir, v, out[dir].Dist[v], td.Dist[v])
			}
		}
		if out[dir].TraversedEdges != td.TraversedEdges {
			t.Fatalf("%v/%v: TraversedEdges %d != top-down %d",
				opt.Algorithm, dir, out[dir].TraversedEdges, td.TraversedEdges)
		}
	}
	return out
}

func TestDirectionPoliciesOnRMAT(t *testing.T) {
	g := testGraph(t)
	src := g.Sources(1, 11)[0]
	for _, algo := range []Algorithm{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid} {
		ranks := 9
		if algo == OneDFlat || algo == OneDHybrid {
			ranks = 6
		}
		out := directionsAgree(t, g, src, Options{Algorithm: algo, Ranks: ranks, Machine: "franklin"})
		td, auto := out[TopDownOnly], out[Auto]
		if td.ScannedBottomUp != 0 {
			t.Errorf("%v: top-down-only run recorded bottom-up work", algo)
		}
		if algo == OneDFlat || algo == OneDHybrid {
			// The 1D push scans every stored adjacency slot of the
			// reached set: exactly both directions of each traversed
			// undirected edge.
			if td.ScannedTopDown != 2*td.TraversedEdges {
				t.Errorf("%v: top-down scanned %d, want %d", algo, td.ScannedTopDown, 2*td.TraversedEdges)
			}
		}
		if auto.ScannedBottomUp == 0 {
			t.Errorf("%v: auto never ran bottom-up on an R-MAT graph", algo)
		}
		if total := auto.ScannedTopDown + auto.ScannedBottomUp; total >= td.ScannedTopDown {
			t.Errorf("%v: auto scanned %d, not below top-down-only %d", algo, total, td.ScannedTopDown)
		}
	}
}

func TestDirectionPoliciesOnDirectedGraph(t *testing.T) {
	// Directed cycle with chords: bottom-up must follow in-edges, not
	// out-edges, to produce correct directed distances.
	edges := [][2]int64{}
	const n = 60
	for i := int64(0); i < n; i++ {
		edges = append(edges, [2]int64{i, (i + 1) % n})
	}
	for i := int64(0); i < n; i += 7 {
		edges = append(edges, [2]int64{i, (i + 13) % n})
	}
	g, err := NewDirectedGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{OneDFlat, TwoDFlat} {
		directionsAgree(t, g, 3, Options{Algorithm: algo, Ranks: 4})
	}
}

func TestDirectionPoliciesOnDisconnectedGraph(t *testing.T) {
	// Two components plus isolated vertices; search from the smaller
	// component, so most of the graph stays Unreached.
	g, err := NewGraphFromEdges(20, [][2]int64{
		{0, 1}, {1, 2}, {2, 0}, // component A
		{5, 6}, {6, 7}, {7, 8}, {8, 9}, // component B
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{OneDFlat, TwoDFlat} {
		out := directionsAgree(t, g, 5, Options{Algorithm: algo, Ranks: 4})
		for _, res := range out {
			if res.Dist[0] != Unreached || res.Dist[19] != Unreached {
				t.Fatalf("%v: foreign component reached", algo)
			}
			if res.Dist[9] != 4 {
				t.Fatalf("%v: dist[9] = %d, want 4 (path 5-6-7-8-9)", algo, res.Dist[9])
			}
		}
	}
}

func TestDirectionPoliciesOnSingleVertexGraph(t *testing.T) {
	g, err := NewGraphFromEdges(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{OneDFlat, TwoDFlat} {
		out := directionsAgree(t, g, 0, Options{Algorithm: algo, Ranks: 1})
		for _, res := range out {
			if res.Dist[0] != 0 || res.Levels != 0 {
				t.Fatalf("%v: single-vertex result %+v", algo, res)
			}
		}
	}
}

func TestDirectionTrace(t *testing.T) {
	g := testGraph(t)
	src := g.Sources(1, 13)[0]
	res, err := g.BFS(src, Options{Algorithm: OneDFlat, Ranks: 4, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LevelScanned) != len(res.LevelFrontier)+1 {
		t.Fatalf("LevelScanned has %d entries, want %d", len(res.LevelScanned), len(res.LevelFrontier)+1)
	}
	if len(res.LevelBottomUp) != len(res.LevelScanned) {
		t.Fatalf("LevelBottomUp has %d entries, want %d", len(res.LevelBottomUp), len(res.LevelScanned))
	}
	var td, bu int64
	for l, s := range res.LevelScanned {
		if res.LevelBottomUp[l] {
			bu += s
		} else {
			td += s
		}
	}
	if td != res.ScannedTopDown || bu != res.ScannedBottomUp {
		t.Errorf("trace sums (%d, %d) != phase totals (%d, %d)", td, bu, res.ScannedTopDown, res.ScannedBottomUp)
	}
}

func TestDirectionOptionErrors(t *testing.T) {
	g := testGraph(t)
	src := g.Sources(1, 14)[0]
	if _, err := g.BFS(src, Options{Algorithm: TwoDFlat, Ranks: 9, DiagonalVectors: true, Direction: BottomUpOnly}); err == nil {
		t.Error("DiagonalVectors with BottomUpOnly accepted")
	}
	// Auto degrades to top-down under the diagonal layout rather than
	// erroring: it is a policy, not a demand.
	res, err := g.BFS(src, Options{Algorithm: TwoDFlat, Ranks: 9, DiagonalVectors: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(res); err != nil {
		t.Error(err)
	}
	if _, err := g.BFS(src, Options{Direction: Direction(42)}); err == nil {
		t.Error("unknown direction accepted")
	}
}

func TestDirectionBenchmarkValidatesAuto(t *testing.T) {
	// The Graph 500 protocol end to end under the default (auto)
	// policy: every search oracle-validated.
	g, err := NewRMATGraph(9, 8, 0xabc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := g.Benchmark(Options{Algorithm: TwoDHybrid, Ranks: 4, Machine: "hopper"}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSearches != 4 || st.HarmonicMeanTEPS <= 0 {
		t.Errorf("unexpected batch stats %+v", st)
	}
}

func TestProjectRMATDirOpt(t *testing.T) {
	base, err := ProjectRMAT("franklin", 512, OneDFlat, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ProjectRMATDirOpt("franklin", 512, OneDFlat, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Phases["bitmap"] <= 0 {
		t.Error("dir-opt projection lacks the bitmap phase")
	}
	if opt.TotalTime >= base.TotalTime {
		t.Errorf("dir-opt projection %.4g not below baseline %.4g at 512 cores", opt.TotalTime, base.TotalTime)
	}
	if _, err := ProjectRMATDirOpt("nope", 64, OneDFlat, 20, 16); err == nil {
		t.Error("unknown machine accepted")
	}
}
