package pbfs

import "testing"

// TestProjectRMATOverlap pins the modeled overlap benefit at paper
// scale: on the communication-avoiding 2D variants the exchanges stay
// bandwidth-bound past a thousand cores, so the hidden time's share of
// the total grows with core count — the paper's observation that
// overlap recovers an increasing fraction of communication time at
// scale — until the shrinking per-rank computation becomes the binding
// side and the gain decays again.
func TestProjectRMATOverlap(t *testing.T) {
	const scale, ef = 26, 16
	gain := func(algo Algorithm, cores int) float64 {
		base, err := ProjectRMAT("franklin", cores, algo, scale, ef)
		if err != nil {
			t.Fatal(err)
		}
		ov, err := ProjectRMATOverlap("franklin", cores, algo, scale, ef)
		if err != nil {
			t.Fatal(err)
		}
		if ov.HiddenTime <= 0 {
			t.Fatalf("%v at %d cores: no hidden time", algo, cores)
		}
		if ov.HiddenTime > ov.CommTime || ov.HiddenTime > ov.ComputeTime {
			t.Fatalf("%v at %d cores: hidden %.4g exceeds comm %.4g or comp %.4g",
				algo, cores, ov.HiddenTime, ov.CommTime, ov.ComputeTime)
		}
		return base.TotalTime / ov.TotalTime
	}

	// The modeled gain grows with core count on the 2D variants while
	// the exchanges are bandwidth-bound.
	for _, algo := range []Algorithm{TwoDFlat, TwoDHybrid} {
		prev := 1.0
		for _, cores := range []int{128, 512, 2048} {
			g := gain(algo, cores)
			if g <= prev {
				t.Errorf("%v: overlap gain %.4f at %d cores does not grow (prev %.4f)",
					algo, g, cores, prev)
			}
			prev = g
		}
	}
	// Every tuned variant benefits at every probed concurrency; the 1D
	// gain instead peaks early — its integration compute (the hideable
	// side) shrinks faster than the all-to-all bandwidth — which is why
	// the paper pairs overlap with the 2D decomposition at scale.
	for _, algo := range []Algorithm{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid} {
		for _, cores := range []int{128, 1024, 4096} {
			if g := gain(algo, cores); g <= 1 {
				t.Errorf("%v at %d cores: overlap gain %.4f <= 1", algo, cores, g)
			}
		}
	}
	if g1, g2 := gain(OneDFlat, 256), gain(OneDFlat, 4096); g1 <= g2 {
		t.Errorf("1D gain should decay at scale: %.4f at 256 vs %.4f at 4096 cores", g1, g2)
	}
}

// TestOverlapThroughSession pins the facade contract: Options.Overlap
// selects a distinct engine (it changes collective schedules), produces
// bit-identical distances and identical modeled comm volumes, and never
// prices slower than the blocking schedule.
func TestOverlapThroughSession(t *testing.T) {
	g, err := NewRMATGraph(12, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	src := g.Sources(1, 2)[0]
	sess := NewSession()
	defer sess.Close()
	for _, algo := range []Algorithm{OneDFlat, OneDHybrid, TwoDFlat, TwoDHybrid} {
		opt := Options{Algorithm: algo, Ranks: 4, Machine: "franklin"}
		base, err := sess.Search(g, src, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Overlap = 4
		ov, err := sess.Search(g, src, opt)
		if err != nil {
			t.Fatal(err)
		}
		for v := range base.Dist {
			if ov.Dist[v] != base.Dist[v] {
				t.Fatalf("%v: overlap changed dist[%d]: %d vs %d", algo, v, ov.Dist[v], base.Dist[v])
			}
		}
		if err := g.Validate(ov); err != nil {
			t.Fatalf("%v: overlapped result invalid: %v", algo, err)
		}
		if ov.SentWords != base.SentWords || ov.RecvWords != base.RecvWords {
			t.Fatalf("%v: overlap changed comm volume: %d/%d vs %d/%d",
				algo, ov.SentWords, ov.RecvWords, base.SentWords, base.RecvWords)
		}
		if ov.SimTime > base.SimTime*(1+1e-9) {
			t.Errorf("%v: overlapped sim %.9g slower than blocking %.9g", algo, ov.SimTime, base.SimTime)
		}
	}
}

// TestOverlapLayoutKey: Overlap is part of the engine cache key (the
// chunked schedule needs its own request arenas), while values below 2
// and comparator algorithms normalize to the blocking engine.
func TestOverlapLayoutKey(t *testing.T) {
	base, err := resolveLayout(Options{Algorithm: OneDFlat, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, ov := range []int{0, 1, -3} {
		lay, err := resolveLayout(Options{Algorithm: OneDFlat, Ranks: 4, Overlap: ov})
		if err != nil {
			t.Fatal(err)
		}
		if lay != base {
			t.Errorf("Overlap=%d resolved to a distinct engine key", ov)
		}
	}
	lay, err := resolveLayout(Options{Algorithm: OneDFlat, Ranks: 4, Overlap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if lay == base {
		t.Error("Overlap=4 shares the blocking engine key")
	}
	for _, algo := range []Algorithm{Reference, PBGL} {
		with, err := resolveLayout(Options{Algorithm: algo, Ranks: 4, Overlap: 4})
		if err != nil {
			t.Fatal(err)
		}
		without, err := resolveLayout(Options{Algorithm: algo, Ranks: 4})
		if err != nil {
			t.Fatal(err)
		}
		if with != without {
			t.Errorf("%v: Overlap leaked into a comparator engine key", algo)
		}
	}
	diag, err := resolveLayout(Options{Algorithm: TwoDFlat, Ranks: 4, DiagonalVectors: true, Overlap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if diag.overlap != 0 {
		t.Error("DiagonalVectors engine kept an overlap key")
	}
	// DiagonalVectors is meaningless (and normalized away) for non-2D
	// algorithms, so it must not silently disable a 1D run's overlap.
	oneDDiag, err := resolveLayout(Options{Algorithm: OneDFlat, Ranks: 4, DiagonalVectors: true, Overlap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if oneDDiag.overlap != 4 {
		t.Error("stray DiagonalVectors flag disabled 1D overlap")
	}
}
