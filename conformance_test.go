package pbfs_test

// Randomized cross-algorithm conformance harness: every algorithm ×
// direction policy × overlap setting × grid shape must agree with the
// serial oracle — bit-identical distances, valid parents, identical
// traversal accounting — and overlap must never change a configuration's
// modeled communication volume, on a seeded stream of adversarial
// graphs (R-MAT, web crawls, directed, disconnected, single-vertex,
// self-loops, stars, paths).
//
// Failures print the graph seed; replay one seed in isolation with
//
//	PBFS_CONFORMANCE_SEED=<seed> go test -run TestConformance

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	pbfs "repro"
)

// conformanceGraphs is the number of random graphs in a full run; -short
// trims the stream (the seed space is shared, so any failing seed from a
// full run replays under the same harness).
const conformanceGraphs = 50

// buildConformanceGraph derives one graph from seed, cycling through the
// generator families so every family sees many seeds.
func buildConformanceGraph(seed int64) (*pbfs.Graph, string, error) {
	rng := rand.New(rand.NewSource(seed))
	n := int64(rng.Intn(400) + 2)
	switch seed % 7 {
	case 0:
		scale := rng.Intn(4) + 6 // 64..512 vertices
		ef := rng.Intn(13) + 4
		g, err := pbfs.NewRMATGraph(scale, ef, uint64(seed)+1)
		return g, fmt.Sprintf("rmat scale=%d ef=%d", scale, ef), err
	case 1:
		// The crawl generator lays vertices out over ~140 BFS layers, so
		// it needs a few hundred vertices to exist at all.
		nv := int64(rng.Intn(1024) + 512)
		g, err := pbfs.NewWebCrawlGraph(nv, uint64(seed)+1)
		return g, fmt.Sprintf("webgen n=%d", nv), err
	case 2:
		// Sparse undirected G(n, m) with occasional self-loops.
		m := rng.Intn(3*int(n)) + 1
		edges := make([][2]int64, 0, m)
		for i := 0; i < m; i++ {
			u, v := rng.Int63n(n), rng.Int63n(n)
			if rng.Intn(10) == 0 {
				v = u // self-loop
			}
			edges = append(edges, [2]int64{u, v})
		}
		g, err := pbfs.NewGraphFromEdges(n, edges)
		return g, fmt.Sprintf("random undirected n=%d m=%d", n, m), err
	case 3:
		// Directed: BFS follows stored edge direction.
		m := rng.Intn(4*int(n)) + 1
		edges := make([][2]int64, 0, m)
		for i := 0; i < m; i++ {
			edges = append(edges, [2]int64{rng.Int63n(n), rng.Int63n(n)})
		}
		g, err := pbfs.NewDirectedGraph(n, edges)
		return g, fmt.Sprintf("directed n=%d m=%d", n, m), err
	case 4:
		// Disconnected: two dense-ish blobs plus isolated vertices.
		half := n/2 + 1
		var edges [][2]int64
		for i := 0; i < int(n); i++ {
			edges = append(edges, [2]int64{rng.Int63n(half), rng.Int63n(half)})
			edges = append(edges, [2]int64{half + rng.Int63n(half/2+1), half + rng.Int63n(half/2+1)})
		}
		g, err := pbfs.NewGraphFromEdges(2*half+int64(rng.Intn(5)), edges)
		return g, fmt.Sprintf("disconnected n=%d", 2*half), err
	case 5:
		// Degenerate shapes: single vertex, self-loop only, star, path.
		switch rng.Intn(4) {
		case 0:
			g, err := pbfs.NewGraphFromEdges(1, nil)
			return g, "single vertex", err
		case 1:
			g, err := pbfs.NewGraphFromEdges(3, [][2]int64{{0, 0}, {1, 1}})
			return g, "self-loops only", err
		case 2:
			edges := make([][2]int64, 0, n-1)
			for v := int64(1); v < n; v++ {
				edges = append(edges, [2]int64{0, v})
			}
			g, err := pbfs.NewGraphFromEdges(n, edges)
			return g, fmt.Sprintf("star n=%d", n), err
		default:
			edges := make([][2]int64, 0, n-1)
			for v := int64(1); v < n; v++ {
				edges = append(edges, [2]int64{v - 1, v})
			}
			g, err := pbfs.NewGraphFromEdges(n, edges)
			return g, fmt.Sprintf("path n=%d", n), err
		}
	default:
		// Undirected with heavy self-loop load.
		m := rng.Intn(2*int(n)) + int(n)
		edges := make([][2]int64, 0, m)
		for i := 0; i < m; i++ {
			u := rng.Int63n(n)
			v := u
			if rng.Intn(3) > 0 {
				v = rng.Int63n(n)
			}
			edges = append(edges, [2]int64{u, v})
		}
		g, err := pbfs.NewGraphFromEdges(n, edges)
		return g, fmt.Sprintf("self-loop heavy n=%d", n), err
	}
}

func TestConformance(t *testing.T) {
	seeds := make([]int64, 0, conformanceGraphs)
	if env := os.Getenv("PBFS_CONFORMANCE_SEED"); env != "" {
		s, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad PBFS_CONFORMANCE_SEED %q: %v", env, err)
		}
		seeds = append(seeds, s)
	} else {
		count := conformanceGraphs
		if testing.Short() {
			count = 12
		}
		for s := int64(0); s < int64(count); s++ {
			seeds = append(seeds, s)
		}
	}
	for _, seed := range seeds {
		conformanceOneGraph(t, seed)
		if t.Failed() {
			return // one failing seed is enough; it is printed for replay
		}
	}
}

func conformanceOneGraph(t *testing.T, seed int64) {
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf("seed %d (replay: PBFS_CONFORMANCE_SEED=%d): %s",
			seed, seed, fmt.Sprintf(format, args...))
	}
	g, desc, err := buildConformanceGraph(seed)
	if err != nil {
		fail("graph build: %v", err)
		return
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	var src int64
	if srcs := g.Sources(1, uint64(seed)+3); len(srcs) > 0 {
		src = srcs[0]
	} else {
		src = rng.Int63n(g.NumVerts())
	}
	ref := g.SerialBFS(src)

	ranks := []int{2, 4, 6}[rng.Intn(3)]
	if int64(ranks) > g.NumVerts() {
		ranks = int(g.NumVerts())
	}
	const overlapChunks = 3
	// Two grid shapes per seed out of {closest square, 1×R, R×1}, rotated
	// so every shape family sees many seeds.
	shapeSet := [][2]int{{0, 0}, {1, ranks}, {ranks, 1}}
	shapes := [][2]int{shapeSet[seed%3], shapeSet[(seed+1)%3]}

	sess := pbfs.NewSession()
	defer sess.Close()

	check := func(opt pbfs.Options, what string) *pbfs.Result {
		res, err := sess.Search(g, src, opt)
		if err != nil {
			fail("%s %s: %v", desc, what, err)
			return nil
		}
		for v := range ref.Dist {
			if res.Dist[v] != ref.Dist[v] {
				fail("%s %s: dist[%d]=%d, serial %d", desc, what, v, res.Dist[v], ref.Dist[v])
				return nil
			}
		}
		if err := g.Validate(res); err != nil {
			fail("%s %s: %v", desc, what, err)
			return nil
		}
		if res.Levels != ref.Levels {
			fail("%s %s: levels %d, serial %d", desc, what, res.Levels, ref.Levels)
			return nil
		}
		if res.TraversedEdges != ref.TraversedEdges {
			fail("%s %s: traversed %d, serial %d", desc, what, res.TraversedEdges, ref.TraversedEdges)
			return nil
		}
		return res
	}

	dirs := []pbfs.Direction{pbfs.Auto, pbfs.TopDownOnly, pbfs.BottomUpOnly}
	for _, algo := range []pbfs.Algorithm{pbfs.OneDFlat, pbfs.OneDHybrid} {
		for _, dir := range dirs {
			opt := pbfs.Options{Algorithm: algo, Ranks: ranks, Direction: dir}
			base := check(opt, fmt.Sprintf("%v/%v", algo, dir))
			opt.Overlap = overlapChunks
			ov := check(opt, fmt.Sprintf("%v/%v/overlap", algo, dir))
			if base != nil && ov != nil &&
				(base.SentWords != ov.SentWords || base.RecvWords != ov.RecvWords) {
				fail("%s %v/%v: overlap changed comm volume %d/%d -> %d/%d",
					desc, algo, dir, base.SentWords, base.RecvWords, ov.SentWords, ov.RecvWords)
			}
		}
	}
	for _, algo := range []pbfs.Algorithm{pbfs.TwoDFlat, pbfs.TwoDHybrid} {
		for _, shape := range shapes {
			for _, dir := range dirs {
				opt := pbfs.Options{
					Algorithm: algo, Ranks: ranks, Direction: dir,
					GridRows: shape[0], GridCols: shape[1],
				}
				what := fmt.Sprintf("%v/%v/grid=%dx%d", algo, dir, shape[0], shape[1])
				base := check(opt, what)
				opt.Overlap = overlapChunks
				ov := check(opt, what+"/overlap")
				if base != nil && ov != nil &&
					(base.SentWords != ov.SentWords || base.RecvWords != ov.RecvWords) {
					fail("%s %s: overlap changed comm volume %d/%d -> %d/%d",
						desc, what, base.SentWords, base.RecvWords, ov.SentWords, ov.RecvWords)
				}
			}
		}
	}
	// Comparator codes: top-down by construction, no overlap knob.
	for _, algo := range []pbfs.Algorithm{pbfs.Reference, pbfs.PBGL} {
		check(pbfs.Options{Algorithm: algo, Ranks: ranks}, algo.String())
	}
	if t.Failed() {
		t.Logf("graph: %s, source %d, ranks %d", desc, src, ranks)
	}
}

// batchConformanceGraphs is the seed count for the batched lane; the
// matrix below is wider per seed (four batch widths per configuration),
// so the stream is shorter than the sequential lane's. The seed space is
// shared with TestConformance: PBFS_CONFORMANCE_SEED replays either.
const batchConformanceGraphs = 12

// TestBatchConformance is the batched lane: for every seeded graph,
// BFSBatch over k ∈ {1, 3, 17, 64} sources — including a guaranteed
// duplicate and, when the graph has one, a source unreachable from the
// rest of the batch — must produce distances bit-identical to k
// sequential Session.Search runs, across algorithms × directions × grid
// shapes (bit-parallel 1D and 2D paths plus the sequential fallbacks).
func TestBatchConformance(t *testing.T) {
	seeds := make([]int64, 0, batchConformanceGraphs)
	if env := os.Getenv("PBFS_CONFORMANCE_SEED"); env != "" {
		s, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad PBFS_CONFORMANCE_SEED %q: %v", env, err)
		}
		seeds = append(seeds, s)
	} else {
		count := batchConformanceGraphs
		if testing.Short() {
			count = 4
		}
		for s := int64(0); s < int64(count); s++ {
			seeds = append(seeds, s)
		}
	}
	for _, seed := range seeds {
		batchConformanceOneGraph(t, seed)
		if t.Failed() {
			return // one failing seed is enough; it is printed for replay
		}
	}
}

func batchConformanceOneGraph(t *testing.T, seed int64) {
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf("seed %d (replay: PBFS_CONFORMANCE_SEED=%d): %s",
			seed, seed, fmt.Sprintf(format, args...))
	}
	g, desc, err := buildConformanceGraph(seed)
	if err != nil {
		fail("graph build: %v", err)
		return
	}
	rng := rand.New(rand.NewSource(seed ^ 0xba7c4))
	ranks := []int{2, 4, 6}[rng.Intn(3)]
	if int64(ranks) > g.NumVerts() {
		ranks = int(g.NumVerts())
	}
	shapeSet := [][2]int{{0, 0}, {1, ranks}, {ranks, 1}}
	shapes := [][2]int{shapeSet[seed%3], shapeSet[(seed+1)%3]}

	sess := pbfs.NewSession()
	defer sess.Close()

	// Sequential baseline, one Session.Search per distinct source. The
	// sequential lane (TestConformance) pins every configuration's Search
	// to the serial oracle, so one configuration's distances stand for
	// them all here.
	seqDist := make(map[int64][]int64)
	sequential := func(src int64) []int64 {
		if d, ok := seqDist[src]; ok {
			return d
		}
		res, err := sess.Search(g, src, pbfs.Options{Algorithm: pbfs.OneDFlat, Ranks: ranks})
		if err != nil {
			t.Fatalf("seed %d: sequential baseline from %d: %v", seed, src, err)
		}
		seqDist[src] = res.Dist
		return res.Dist
	}

	// makeSources builds a k-wide batch from the large component, padded
	// with duplicates, with srcs[1] a guaranteed duplicate of srcs[0] and
	// srcs[2] a source unreachable from srcs[0] when the graph has one.
	makeSources := func(k int) []int64 {
		srcs := g.Sources(k, uint64(seed)+7)
		if len(srcs) == 0 {
			srcs = []int64{rng.Int63n(g.NumVerts())}
		}
		for len(srcs) < k {
			srcs = append(srcs, srcs[rng.Intn(len(srcs))])
		}
		if k >= 2 {
			srcs[1] = srcs[0]
		}
		if k >= 3 {
			base := sequential(srcs[0])
			for v := int64(0); v < g.NumVerts(); v++ {
				if base[v] == pbfs.Unreached {
					srcs[2] = v
					break
				}
			}
		}
		return srcs
	}
	batches := map[int][]int64{}
	for _, k := range []int{1, 3, 17, 64} {
		batches[k] = makeSources(k)
	}

	checkBatch := func(opt pbfs.Options, what string) {
		for _, k := range []int{1, 3, 17, 64} {
			srcs := batches[k]
			br, err := sess.BFSBatch(g, srcs, opt)
			if err != nil {
				fail("%s %s k=%d: %v", desc, what, k, err)
				return
			}
			if len(br.Results) != len(srcs) {
				fail("%s %s k=%d: %d results", desc, what, k, len(br.Results))
				return
			}
			for i, res := range br.Results {
				want := sequential(srcs[i])
				for v := range want {
					if res.Dist[v] != want[v] {
						fail("%s %s k=%d: source %d dist[%d]=%d, sequential %d",
							desc, what, k, srcs[i], v, res.Dist[v], want[v])
						return
					}
				}
			}
		}
	}

	dirs := []pbfs.Direction{pbfs.Auto, pbfs.TopDownOnly, pbfs.BottomUpOnly}
	for _, algo := range []pbfs.Algorithm{pbfs.OneDFlat, pbfs.OneDHybrid} {
		for _, dir := range dirs {
			checkBatch(pbfs.Options{Algorithm: algo, Ranks: ranks, Direction: dir},
				fmt.Sprintf("%v/%v", algo, dir))
		}
	}
	for _, algo := range []pbfs.Algorithm{pbfs.TwoDFlat, pbfs.TwoDHybrid} {
		for _, shape := range shapes {
			for _, dir := range dirs {
				checkBatch(pbfs.Options{
					Algorithm: algo, Ranks: ranks, Direction: dir,
					GridRows: shape[0], GridCols: shape[1],
				}, fmt.Sprintf("%v/%v/grid=%dx%d", algo, dir, shape[0], shape[1]))
			}
		}
	}
	// Sequential-fallback engines: diagonal vector distribution and the
	// comparator codes take the per-source path under the same contract.
	// DiagonalVectors needs a square grid, so it gets its own rank count.
	diagRanks := 1
	if g.NumVerts() >= 4 {
		diagRanks = 4
	}
	checkBatch(pbfs.Options{Algorithm: pbfs.TwoDFlat, Ranks: diagRanks, DiagonalVectors: true}, "2d/diag")
	checkBatch(pbfs.Options{Algorithm: pbfs.Reference, Ranks: ranks}, "reference")
	if t.Failed() {
		t.Logf("graph: %s, ranks %d", desc, ranks)
	}
}
