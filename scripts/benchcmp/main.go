// Command benchcmp is the bench-regression gate: it compares a freshly
// generated BENCH trajectory file (bfsbench -bench-out) against the
// committed baseline and exits non-zero if a steady-state metric
// regressed beyond tolerance.
//
// Two metrics gate merges:
//
//   - allocs/op of a warm-session search must not grow: the PR-1/PR-3
//     arena work made steady-state levels allocation-free, and an
//     allocation creeping back into the level loop is invisible to
//     correctness tests.
//   - batch_speedup (one open session for a 16-search batch vs 16
//     one-shot rebuilds) must not collapse: it is the observable proof
//     that a configuration pays exactly one distribution.
//
// allocs/op is nearly deterministic, so its tolerance is tight;
// batch_speedup is wall-clock and shares the host with other CI jobs,
// so its tolerance only catches collapses (losing session reuse drops
// it from ~50-190x to ~1x).
//
// On multicore hosts a third family gates: parallel_efficiency (the
// GOMAXPROCS=1 / GOMAXPROCS=all level-loop ratio, at the report scale
// and at scale 18) must clear an absolute floor, so a serialization
// point reintroduced into the collective engine fails CI instead of
// landing silently. Host metadata (cpu count, Go version) is compared
// informationally: differing core counts warn, never fail, since
// wall-clock columns are only comparable within a host class.
//
// Usage:
//
//	benchcmp -baseline BENCH_bfs.json -candidate /tmp/bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// result mirrors the BENCH_bfs.json fields the gate reads (see
// internal/bench.WallResult for the full schema).
type result struct {
	Config       string  `json:"config"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BatchSpeedup float64 `json:"batch_speedup"`
	// Overlapped-communication record: simulated (deterministic)
	// blocking/overlapped time ratio, gated tightly — overlap must
	// never price a configuration slower than its blocking schedule.
	OverlapChunks  int     `json:"overlap_chunks"`
	OverlapSpeedup float64 `json:"overlap_speedup"`
	// Multi-source batch record: the ratio of 64 sequential
	// warm-session searches to one 64-wide bit-parallel batch, on the
	// simulated clock (deterministic, so it can be gated tightly where
	// the wall-clock ratio breathes with host load). Losing the
	// bit-parallel path (falling back to per-source traversal) drops it
	// to ~1x, so the gate holds an absolute floor rather than tracking
	// the baseline's exact ratio.
	SimAmortization float64 `json:"msbfs_sim_amortization"`
	// Serving-layer record: the queue → former pipeline batching a
	// deterministic bursty query stream through the same warm session.
	// serve_speedup is single-search sim time / amortized per-query sim
	// time; serve_batch_occupancy is the mean batch width the stream
	// achieved. Both are simulated-clock metrics, so they gate tightly.
	ServeSpeedup   float64 `json:"serve_speedup"`
	ServeOccupancy float64 `json:"serve_batch_occupancy"`
	// Auto-tuner record: simulated time under the default policy
	// parameters divided by simulated time under the tuned settings the
	// counterfactual replays picked. The tuner always scores the
	// defaults as candidate 0 and only displaces them on a strict win,
	// so the ratio is >= 1 by construction; a value under 1 means the
	// tuner started applying settings it never validated.
	TunedSpeedup float64 `json:"tuned_speedup"`
}

// hostInfo mirrors the host stamp bfsbench records: wall-clock columns
// are only comparable within a host class, so the gate warns (without
// failing) when baseline and candidate core counts differ.
type hostInfo struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// probe mirrors the parallel-efficiency records (report scale and
// scale 18): the GOMAXPROCS=1 / GOMAXPROCS=all level-loop ratio of the
// collective engine. On a multicore host it must clear a floor — a
// reintroduced serialization point (a merge under the group lock, a
// condvar thundering herd) drags it back to ~1 while every correctness
// test stays green.
type probe struct {
	Scale              int     `json:"scale"`
	ParallelEfficiency float64 `json:"parallel_efficiency"`
}

// serveGraph mirrors one registered graph's row in the v1 serving
// probe: its batch occupancy is compared informationally per graph.
type serveGraph struct {
	Graph         string  `json:"graph"`
	MeanOccupancy float64 `json:"mean_occupancy"`
}

// serveProbe mirrors the v1 multi-graph serving record (PR 9): a
// deterministic Zipf query stream over two registered graphs through
// the full admission path. Both rates derive from the simulated clock
// and seeded arrivals, so they gate tightly: the cache hit rate
// falling under its floor means hot-source caching stopped absorbing
// Zipf repeats, and the deadline miss rate climbing over its ceiling
// means deadline scheduling began shedding queries it used to serve in
// time.
type serveProbe struct {
	CacheHitRate     float64      `json:"serve_cache_hit_rate"`
	DeadlineMissRate float64      `json:"serve_deadline_miss_rate"`
	Graphs           []serveGraph `json:"graphs"`
}

type report struct {
	Scale   int       `json:"scale"`
	Host    *hostInfo `json:"host"`
	Results []result  `json:"results"`
	// HybridOverhead1D is the wall-clock 1d-hybrid/1d-flat ratio (the
	// PR 1 single-core regression note); its trajectory is gated
	// loosely because it shares the host with other CI jobs.
	HybridOverhead1D float64     `json:"hybrid_overhead_1d"`
	Parallel         *probe      `json:"parallel"`
	Scale18          *probe      `json:"scale18"`
	Serve            *serveProbe `json:"serve"`
}

// tolerances bound how far a candidate metric may drift from baseline.
type tolerances struct {
	allocGrow    float64 // relative allocs/op growth allowed (e.g. 0.25)
	allocSlack   float64 // absolute allocs/op slack on top of the ratio
	speedupDrop  float64 // relative batch_speedup drop allowed (e.g. 0.6)
	speedupFloor float64 // speedups below this are never compared (degenerate hosts)
	overlapFloor float64 // overlap_speedup below this fails (simulated, so tight)
	hybridGrow   float64 // relative 1d hybrid/flat overhead growth allowed (wall clock)
	// amortFloor is the absolute msbfs_sim_amortization floor: a
	// 64-wide bit-parallel batch should beat 64 sequential searches
	// several times over on the simulated clock, so falling under 2x
	// means the batched kernels stopped amortizing (e.g. a silent
	// fallback to the per-source path). Only enforced when the baseline
	// itself clears the floor, so baselines predating the batch record
	// don't wedge CI.
	amortFloor float64
	// serveFloor / serveOccFloor gate the serving layer: at a mean
	// batch occupancy of 16+ the amortized per-query simulated time
	// must beat a single warm-session search (speedup > 1), otherwise
	// the queue → former pipeline stopped batching (e.g. every query
	// dispatched alone). Like amortFloor, each is only enforced when
	// the baseline itself clears it, so baselines predating the serving
	// record don't wedge CI.
	serveFloor    float64
	serveOccFloor float64
	// serveHitRateFloor / serveMissRateCeil gate the v1 serving probe
	// (simulated clock + seeded Zipf arrivals, so deterministic): the
	// multi-graph cache hit rate must stay at or above the floor and
	// the deadline miss rate at or below the ceiling. Each is enforced
	// only when the baseline carries the probe and itself clears the
	// same bound, so pre-v1 baselines don't wedge CI.
	serveHitRateFloor float64
	serveMissRateCeil float64
	// tunedFloor gates tuned_speedup: the tuner scores the default
	// settings as candidate 0 and replaces them only on a strict
	// simulated-time win, so the ratio is >= 1 by construction. Both
	// sides derive from the simulated clock (deterministic), so the
	// floor sits just under 1 purely for float division headroom. It is
	// enforced whenever the candidate carries the field (> 0) — like
	// overlap_speedup — so a pre-tuner baseline doesn't suppress it.
	tunedFloor float64
	// parallelFloor is the parallel_efficiency floor, enforced only when
	// the candidate host has more than one CPU (a single-core host runs
	// both sides of the ratio on the same schedule, so its value carries
	// no signal). 1.05 is deliberately conservative — 16 rank goroutines
	// on even 2 cores clear it comfortably — because its job is to catch
	// the collapse back to ~1.0x, not to track scaling quality.
	parallelFloor float64
}

func defaultTolerances() tolerances {
	return tolerances{
		allocGrow: 0.25, allocSlack: 16, speedupDrop: 0.6, speedupFloor: 2,
		overlapFloor: 0.999999, hybridGrow: 0.5, amortFloor: 2,
		serveFloor: 1, serveOccFloor: 16,
		serveHitRateFloor: 0.25, serveMissRateCeil: 0.5,
		tunedFloor:    0.999999,
		parallelFloor: 1.05,
	}
}

// warnings returns advisory messages that do not fail the gate:
// cross-host comparisons whose wall-clock columns are not directly
// comparable.
func warnings(base, cand *report) []string {
	var warn []string
	if base.Host != nil && cand.Host != nil && base.Host.NumCPU != cand.Host.NumCPU {
		warn = append(warn, fmt.Sprintf(
			"baseline host has %d cpus, candidate %d: wall-clock columns (ns/op, batch timings, parallel_efficiency) are not directly comparable",
			base.Host.NumCPU, cand.Host.NumCPU))
	}
	return warn
}

// compare returns one message per regressed metric; an empty slice
// means the candidate holds the baseline. Every baseline configuration
// must appear in the candidate — a row vanishing (or being renamed) is
// itself a regression, otherwise breaking a configuration's generation
// would silently drop it from both gates. Candidate-only
// configurations are ignored (adding one is not a regression).
func compare(base, cand *report, tol tolerances) []string {
	var bad []string
	candBy := make(map[string]result, len(cand.Results))
	for _, r := range cand.Results {
		candBy[r.Config] = r
	}
	for _, b := range base.Results {
		c, ok := candBy[b.Config]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: configuration missing from candidate", b.Config))
			continue
		}
		if limit := b.AllocsPerOp*(1+tol.allocGrow) + tol.allocSlack; c.AllocsPerOp > limit {
			bad = append(bad, fmt.Sprintf("%s: allocs/op %.0f exceeds baseline %.0f (+%.0f%% +%.0f slack)",
				b.Config, c.AllocsPerOp, b.AllocsPerOp, tol.allocGrow*100, tol.allocSlack))
		}
		if b.BatchSpeedup >= tol.speedupFloor {
			if floor := b.BatchSpeedup * (1 - tol.speedupDrop); c.BatchSpeedup < floor {
				bad = append(bad, fmt.Sprintf("%s: batch_speedup %.1fx below baseline %.1fx (-%.0f%% floor %.1fx)",
					b.Config, c.BatchSpeedup, b.BatchSpeedup, tol.speedupDrop*100, floor))
			}
		}
		// Simulated times are deterministic, so the overlap gate needs
		// no wall-clock slack: an overlapped schedule pricing slower
		// than its blocking counterpart is a scheduling regression.
		if c.OverlapChunks >= 2 && c.OverlapSpeedup < tol.overlapFloor {
			bad = append(bad, fmt.Sprintf("%s: overlap_speedup %.6f below %.6f (overlap priced slower than blocking)",
				b.Config, c.OverlapSpeedup, tol.overlapFloor))
		}
		if b.SimAmortization >= tol.amortFloor && c.SimAmortization < tol.amortFloor {
			bad = append(bad, fmt.Sprintf("%s: msbfs_sim_amortization %.1fx below the %.1fx floor (baseline %.1fx) — batched kernels stopped amortizing",
				b.Config, c.SimAmortization, tol.amortFloor, b.SimAmortization))
		}
		if b.ServeSpeedup > tol.serveFloor && c.ServeSpeedup <= tol.serveFloor {
			bad = append(bad, fmt.Sprintf("%s: serve_speedup %.2fx at or below the %.0fx floor (baseline %.1fx) — amortized serving no longer beats single searches",
				b.Config, c.ServeSpeedup, tol.serveFloor, b.ServeSpeedup))
		}
		if b.ServeOccupancy >= tol.serveOccFloor && c.ServeOccupancy < tol.serveOccFloor {
			bad = append(bad, fmt.Sprintf("%s: serve_batch_occupancy %.1f below the %.0f floor (baseline %.1f) — batch former stopped filling batches",
				b.Config, c.ServeOccupancy, tol.serveOccFloor, b.ServeOccupancy))
		}
		// The tuner's speedup is >= 1 by construction (defaults are
		// always scored as a candidate; strict win to displace), so any
		// candidate carrying the field under the floor means applyTuned
		// started handing out settings the tuner never validated.
		// Simulated clock on both sides — no wall-clock slack needed.
		if c.TunedSpeedup > 0 && c.TunedSpeedup < tol.tunedFloor {
			bad = append(bad, fmt.Sprintf("%s: tuned_speedup %.6f below %.6f — tuner applied settings slower than the defaults it scored",
				b.Config, c.TunedSpeedup, tol.tunedFloor))
		}
	}
	if base.HybridOverhead1D > 0 && cand.HybridOverhead1D > base.HybridOverhead1D*(1+tol.hybridGrow) {
		bad = append(bad, fmt.Sprintf("hybrid_overhead_1d %.2fx exceeds baseline %.2fx (+%.0f%%)",
			cand.HybridOverhead1D, base.HybridOverhead1D, tol.hybridGrow*100))
	}
	// Parallel-efficiency gate. Records must not vanish once the
	// baseline carries them, and on a multicore candidate host the
	// efficiency must clear its floor: collapsing to ~1.0x means a
	// serialization point crept back into the collective engine while
	// every correctness test stayed green.
	if base.Parallel != nil && cand.Parallel == nil {
		bad = append(bad, "parallel: probe record missing from candidate")
	}
	if base.Scale18 != nil && cand.Scale18 == nil {
		bad = append(bad, "scale18: probe record missing from candidate (scale-18 run no longer completes?)")
	}
	// v1 serving probe gate: the record must not vanish once the
	// baseline carries it, the Zipf cache hit rate must hold its floor,
	// the deadline miss rate its ceiling, and no baseline graph row may
	// disappear. All simulated-clock metrics — deterministic, so no
	// wall-clock slack.
	if base.Serve != nil {
		if cand.Serve == nil {
			bad = append(bad, "serve: v1 serving probe record missing from candidate")
		} else {
			if base.Serve.CacheHitRate >= tol.serveHitRateFloor &&
				cand.Serve.CacheHitRate < tol.serveHitRateFloor {
				bad = append(bad, fmt.Sprintf("serve: serve_cache_hit_rate %.3f below the %.2f floor (baseline %.3f) — hot-source cache stopped absorbing Zipf repeats",
					cand.Serve.CacheHitRate, tol.serveHitRateFloor, base.Serve.CacheHitRate))
			}
			if base.Serve.DeadlineMissRate <= tol.serveMissRateCeil &&
				cand.Serve.DeadlineMissRate > tol.serveMissRateCeil {
				bad = append(bad, fmt.Sprintf("serve: serve_deadline_miss_rate %.3f above the %.2f ceiling (baseline %.3f) — deadline scheduling sheds queries it used to serve in time",
					cand.Serve.DeadlineMissRate, tol.serveMissRateCeil, base.Serve.DeadlineMissRate))
			}
			candGraphs := make(map[string]serveGraph, len(cand.Serve.Graphs))
			for _, g := range cand.Serve.Graphs {
				candGraphs[g.Graph] = g
			}
			for _, g := range base.Serve.Graphs {
				if _, ok := candGraphs[g.Graph]; !ok {
					bad = append(bad, fmt.Sprintf("serve: graph %q missing from candidate probe — multi-graph serving lost a registry entry", g.Graph))
				}
			}
		}
	}
	if cand.Host != nil && cand.Host.NumCPU > 1 {
		for _, pr := range []struct {
			name string
			p    *probe
		}{{"parallel", cand.Parallel}, {"scale18", cand.Scale18}} {
			name, p := pr.name, pr.p
			if p != nil && p.ParallelEfficiency < tol.parallelFloor {
				bad = append(bad, fmt.Sprintf("%s: parallel_efficiency %.2fx below the %.2fx floor on a %d-cpu host — collective engine serialized",
					name, p.ParallelEfficiency, tol.parallelFloor, cand.Host.NumCPU))
			}
		}
	}
	return bad
}

func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &rep, nil
}

func main() {
	var (
		baseline    = flag.String("baseline", "BENCH_bfs.json", "committed BENCH trajectory file")
		candidate   = flag.String("candidate", "", "freshly generated trajectory file to gate")
		allocGrow   = flag.Float64("alloc-tol", defaultTolerances().allocGrow, "relative allocs/op growth allowed")
		speedupDrop = flag.Float64("speedup-tol", defaultTolerances().speedupDrop, "relative batch_speedup drop allowed")
	)
	flag.Parse()
	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -candidate is required")
		os.Exit(2)
	}
	base, err := loadReport(*baseline)
	if err == nil {
		var cand *report
		if cand, err = loadReport(*candidate); err == nil {
			tol := defaultTolerances()
			tol.allocGrow, tol.speedupDrop = *allocGrow, *speedupDrop
			for _, msg := range warnings(base, cand) {
				fmt.Fprintln(os.Stderr, "benchcmp: WARNING:", msg)
			}
			if bad := compare(base, cand, tol); len(bad) > 0 {
				for _, msg := range bad {
					fmt.Fprintln(os.Stderr, "benchcmp: REGRESSION:", msg)
				}
				os.Exit(1)
			}
			fmt.Printf("benchcmp: OK (%d configurations within tolerance)\n", len(base.Results))
			return
		}
	}
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(2)
}
