package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleBaseline() *report {
	return &report{Scale: 16, Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188},
		{Config: "2d-flat", AllocsPerOp: 425, BatchSpeedup: 54},
	}}
}

// TestCompareFailsOnSyntheticRegression is the gate's own gate: a
// candidate with regressed steady-state allocations or a collapsed
// batch speedup must be flagged.
func TestCompareFailsOnSyntheticRegression(t *testing.T) {
	base := sampleBaseline()
	tol := defaultTolerances()

	allocRegressed := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 400, BatchSpeedup: 188}, // 170 -> 400
		{Config: "2d-flat", AllocsPerOp: 425, BatchSpeedup: 54},
	}}
	bad := compare(base, allocRegressed, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "allocs/op") {
		t.Fatalf("alloc regression not flagged: %v", bad)
	}

	speedupCollapsed := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188},
		{Config: "2d-flat", AllocsPerOp: 425, BatchSpeedup: 1.1}, // session reuse lost
	}}
	bad = compare(base, speedupCollapsed, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "batch_speedup") {
		t.Fatalf("speedup collapse not flagged: %v", bad)
	}
}

// TestCompareAcceptsNoise: jitter inside the tolerances (allocator
// noise, a moderately loaded CI host) must pass, as must an extra
// configuration the baseline does not know yet.
func TestCompareAcceptsNoise(t *testing.T) {
	base := sampleBaseline()
	cand := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 180, BatchSpeedup: 120}, // +6% allocs, -36% speedup
		{Config: "2d-flat", AllocsPerOp: 430, BatchSpeedup: 54},
		{Config: "2d-hybrid", AllocsPerOp: 9999, BatchSpeedup: 1}, // new config: ignored
	}}
	if bad := compare(base, cand, defaultTolerances()); len(bad) != 0 {
		t.Fatalf("in-tolerance candidate flagged: %v", bad)
	}
}

// TestCompareDisjointConfigs: a candidate measuring nothing the
// baseline tracks must fail rather than silently pass.
func TestCompareDisjointConfigs(t *testing.T) {
	cand := &report{Results: []result{{Config: "other", AllocsPerOp: 1, BatchSpeedup: 100}}}
	if bad := compare(sampleBaseline(), cand, defaultTolerances()); len(bad) != 2 {
		t.Fatalf("disjoint configuration sets: got %v, want one missing-config message per baseline row", bad)
	}
}

// TestCompareMissingConfig: losing (or renaming) a single baseline
// configuration is a regression even while the others still pass — a
// broken generator must not silently shrink the gate's coverage.
func TestCompareMissingConfig(t *testing.T) {
	cand := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188},
		// 2d-flat vanished (e.g. renamed to "2d")
		{Config: "2d", AllocsPerOp: 425, BatchSpeedup: 54},
	}}
	bad := compare(sampleBaseline(), cand, defaultTolerances())
	if len(bad) != 1 || !strings.Contains(bad[0], "2d-flat") || !strings.Contains(bad[0], "missing") {
		t.Fatalf("missing configuration not flagged: %v", bad)
	}
}

// TestLoadReportRoundTrip checks the file loader against the committed
// schema, including its rejection of empty and malformed files.
func TestLoadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	data, err := json.Marshal(sampleBaseline())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 || rep.Results[0].Config != "1d-flat" || rep.Results[0].AllocsPerOp != 170 {
		t.Fatalf("round trip mangled report: %+v", rep)
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(empty); err == nil {
		t.Error("empty report accepted")
	}
	if _, err := loadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestLoadCommittedBaseline guards the gate against schema drift: the
// repository's committed BENCH_bfs.json must stay loadable with
// comparable metrics.
func TestLoadCommittedBaseline(t *testing.T) {
	rep, err := loadReport(filepath.Join("..", "..", "BENCH_bfs.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Config == "" || r.AllocsPerOp <= 0 || r.BatchSpeedup <= 0 {
			t.Errorf("committed baseline has degenerate entry %+v", r)
		}
	}
}

// TestCompareOverlapAndHybridGates covers the PR 5 additions: a
// configuration whose overlapped schedule prices slower than blocking
// fails tightly (sim is deterministic), and a collapsing 1D hybrid
// single-core overhead trips its loose wall-clock gate.
func TestCompareOverlapAndHybridGates(t *testing.T) {
	tol := defaultTolerances()
	base := &report{Scale: 16, HybridOverhead1D: 1.1, Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188, OverlapChunks: 4, OverlapSpeedup: 1.02},
	}}

	ok := &report{HybridOverhead1D: 1.2, Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188, OverlapChunks: 4, OverlapSpeedup: 1.01},
	}}
	if bad := compare(base, ok, tol); len(bad) != 0 {
		t.Fatalf("healthy overlap candidate flagged: %v", bad)
	}

	slowOverlap := &report{HybridOverhead1D: 1.1, Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188, OverlapChunks: 4, OverlapSpeedup: 0.97},
	}}
	bad := compare(base, slowOverlap, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "overlap_speedup") {
		t.Fatalf("slower-than-blocking overlap not flagged: %v", bad)
	}

	// A candidate that stopped measuring overlap (chunks 0) is not
	// compared — the row may come from a -overlap 0 run.
	unmeasured := &report{HybridOverhead1D: 1.1, Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188},
	}}
	if bad := compare(base, unmeasured, tol); len(bad) != 0 {
		t.Fatalf("unmeasured overlap flagged: %v", bad)
	}

	hybridBlowup := &report{HybridOverhead1D: 2.5, Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188, OverlapChunks: 4, OverlapSpeedup: 1.02},
	}}
	bad = compare(base, hybridBlowup, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "hybrid_overhead_1d") {
		t.Fatalf("hybrid overhead blowup not flagged: %v", bad)
	}
}

// TestCompareBatchAmortizationGate covers the PR 6 addition: a 64-wide
// bit-parallel batch falling under the absolute simulated-clock
// amortization floor is a regression (the batched kernels silently
// stopped amortizing), but only when the baseline itself cleared the
// floor, and movement above the floor passes regardless of how far the
// baseline sat above it.
func TestCompareBatchAmortizationGate(t *testing.T) {
	tol := defaultTolerances()
	base := &report{Scale: 16, Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188, SimAmortization: 8.1},
	}}

	noisy := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188, SimAmortization: 2.4},
	}}
	if bad := compare(base, noisy, tol); len(bad) != 0 {
		t.Fatalf("above-floor amortization flagged: %v", bad)
	}

	collapsed := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188, SimAmortization: 1.1},
	}}
	bad := compare(base, collapsed, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "msbfs_sim_amortization") {
		t.Fatalf("collapsed amortization not flagged: %v", bad)
	}

	// A degenerate baseline host (or a pre-PR-6 baseline file with the
	// field absent, unmarshaling to 0) never wedges CI.
	weakBase := &report{Scale: 16, Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188, SimAmortization: 1.3},
	}}
	if bad := compare(weakBase, collapsed, tol); len(bad) != 0 {
		t.Fatalf("sub-floor baseline enforced the floor: %v", bad)
	}
}

// TestCompareServeGates covers the PR 7 additions: the serving layer's
// amortized speedup must stay above 1x (batched queries beating single
// searches) and its mean batch occupancy above 16, each enforced only
// when the committed baseline cleared the same floor — a pre-serving
// baseline (fields absent, unmarshaling to 0) never wedges CI.
func TestCompareServeGates(t *testing.T) {
	tol := defaultTolerances()
	base := &report{Scale: 16, Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188,
			ServeSpeedup: 17.2, ServeOccupancy: 48.0},
	}}

	healthy := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188,
			ServeSpeedup: 9.5, ServeOccupancy: 24.0}, // moved, still well above both floors
	}}
	if bad := compare(base, healthy, tol); len(bad) != 0 {
		t.Fatalf("above-floor serving candidate flagged: %v", bad)
	}

	noSpeedup := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188,
			ServeSpeedup: 0.9, ServeOccupancy: 48.0}, // batching now slower than single searches
	}}
	bad := compare(base, noSpeedup, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "serve_speedup") {
		t.Fatalf("collapsed serve speedup not flagged: %v", bad)
	}

	emptyBatches := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188,
			ServeSpeedup: 17.2, ServeOccupancy: 1.2}, // every query dispatched nearly alone
	}}
	bad = compare(base, emptyBatches, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "serve_batch_occupancy") {
		t.Fatalf("collapsed serve occupancy not flagged: %v", bad)
	}

	preServeBase := &report{Scale: 16, Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188},
	}}
	broken := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188,
			ServeSpeedup: 0.5, ServeOccupancy: 1},
	}}
	if bad := compare(preServeBase, broken, tol); len(bad) != 0 {
		t.Fatalf("pre-serving baseline enforced the serve floors: %v", bad)
	}
}

// TestCompareParallelEfficiencyGate covers the PR 8 additions: on a
// multicore candidate host, parallel_efficiency collapsing back to ~1x
// (a serialization point reintroduced into the collective engine) fails
// the gate; on a single-core host the ratio carries no signal and is
// never enforced; probe records vanishing once the baseline carries
// them is itself a regression.
func TestCompareParallelEfficiencyGate(t *testing.T) {
	tol := defaultTolerances()
	row := result{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188}
	base := &report{Scale: 16, Host: &hostInfo{NumCPU: 8}, Results: []result{row},
		Parallel: &probe{Scale: 16, ParallelEfficiency: 3.4},
		Scale18:  &probe{Scale: 18, ParallelEfficiency: 3.9}}

	healthy := &report{Host: &hostInfo{NumCPU: 8}, Results: []result{row},
		Parallel: &probe{Scale: 16, ParallelEfficiency: 2.1},
		Scale18:  &probe{Scale: 18, ParallelEfficiency: 2.5}}
	if bad := compare(base, healthy, tol); len(bad) != 0 {
		t.Fatalf("healthy parallel candidate flagged: %v", bad)
	}

	serialized := &report{Host: &hostInfo{NumCPU: 8}, Results: []result{row},
		Parallel: &probe{Scale: 16, ParallelEfficiency: 1.01},
		Scale18:  &probe{Scale: 18, ParallelEfficiency: 2.5}}
	bad := compare(base, serialized, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "parallel_efficiency") {
		t.Fatalf("serialized engine not flagged: %v", bad)
	}

	// Single-core host: both sides of the ratio run the same schedule,
	// so ~1.0x is expected and must pass.
	singleCore := &report{Host: &hostInfo{NumCPU: 1}, Results: []result{row},
		Parallel: &probe{Scale: 16, ParallelEfficiency: 0.99},
		Scale18:  &probe{Scale: 18, ParallelEfficiency: 1.0}}
	if bad := compare(base, singleCore, tol); len(bad) != 0 {
		t.Fatalf("single-core candidate flagged: %v", bad)
	}

	vanished := &report{Host: &hostInfo{NumCPU: 8}, Results: []result{row}}
	bad = compare(base, vanished, tol)
	if len(bad) != 2 || !strings.Contains(bad[0], "parallel") || !strings.Contains(bad[1], "scale18") {
		t.Fatalf("vanished probe records not flagged: %v", bad)
	}

	// Pre-PR-8 baseline (no host, no probes): nothing new is enforced.
	oldBase := &report{Scale: 16, Results: []result{row}}
	if bad := compare(oldBase, vanished, tol); len(bad) != 0 {
		t.Fatalf("pre-probe baseline enforced probe gates: %v", bad)
	}
}

// TestCompareServeProbeGates covers the PR 9 additions: the v1 serving
// probe's Zipf cache hit rate must hold its floor and its deadline
// miss rate its ceiling, each enforced only when the baseline itself
// cleared the same bound; the probe record (and each registered graph's
// row) vanishing once the baseline carries it is a regression; a pre-v1
// baseline (field absent, unmarshaling to nil) never wedges CI.
func TestCompareServeProbeGates(t *testing.T) {
	tol := defaultTolerances()
	row := result{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188}
	twoGraphs := []serveGraph{{Graph: "primary"}, {Graph: "secondary"}}
	base := &report{Scale: 16, Results: []result{row},
		Serve: &serveProbe{CacheHitRate: 0.8, DeadlineMissRate: 0.1, Graphs: twoGraphs}}

	healthy := &report{Results: []result{row},
		Serve: &serveProbe{CacheHitRate: 0.3, DeadlineMissRate: 0.4, Graphs: twoGraphs}}
	if bad := compare(base, healthy, tol); len(bad) != 0 {
		t.Fatalf("in-bounds serve probe flagged: %v", bad)
	}

	coldCache := &report{Results: []result{row},
		Serve: &serveProbe{CacheHitRate: 0.1, DeadlineMissRate: 0.1, Graphs: twoGraphs}}
	bad := compare(base, coldCache, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "serve_cache_hit_rate") {
		t.Fatalf("collapsed cache hit rate not flagged: %v", bad)
	}

	shedding := &report{Results: []result{row},
		Serve: &serveProbe{CacheHitRate: 0.8, DeadlineMissRate: 0.9, Graphs: twoGraphs}}
	bad = compare(base, shedding, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "serve_deadline_miss_rate") {
		t.Fatalf("blown deadline miss rate not flagged: %v", bad)
	}

	lostGraph := &report{Results: []result{row},
		Serve: &serveProbe{CacheHitRate: 0.8, DeadlineMissRate: 0.1,
			Graphs: []serveGraph{{Graph: "primary"}}}}
	bad = compare(base, lostGraph, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "secondary") {
		t.Fatalf("lost registry graph not flagged: %v", bad)
	}

	vanished := &report{Results: []result{row}}
	bad = compare(base, vanished, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "serving probe record missing") {
		t.Fatalf("vanished serve probe not flagged: %v", bad)
	}

	// Pre-v1 baseline, or one that never cleared the bounds itself:
	// nothing new is enforced.
	oldBase := &report{Scale: 16, Results: []result{row}}
	if bad := compare(oldBase, coldCache, tol); len(bad) != 0 {
		t.Fatalf("pre-v1 baseline enforced serve probe gates: %v", bad)
	}
	weakBase := &report{Scale: 16, Results: []result{row},
		Serve: &serveProbe{CacheHitRate: 0.2, DeadlineMissRate: 0.6, Graphs: twoGraphs}}
	if bad := compare(weakBase, shedding, tol); len(bad) != 0 {
		t.Fatalf("out-of-bounds baseline enforced serve probe gates: %v", bad)
	}
}

// TestCompareTunedSpeedupGate covers the PR 10 addition: tuned_speedup
// is >= 1 by construction (the tuner always scores the defaults and
// only displaces them on a strict simulated-time win), so a candidate
// carrying the field below the floor means applyTuned handed out
// settings the tuner never validated. Enforced whenever the candidate
// carries the field — like overlap_speedup — so a pre-tuner baseline
// (field absent on its rows) does not suppress the check, while a
// candidate that stopped measuring (field 0) is not compared.
func TestCompareTunedSpeedupGate(t *testing.T) {
	tol := defaultTolerances()
	base := sampleBaseline() // pre-tuner baseline: no tuned_speedup fields

	healthy := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188, TunedSpeedup: 1.0},
		{Config: "2d-flat", AllocsPerOp: 425, BatchSpeedup: 54, TunedSpeedup: 1.37},
	}}
	if bad := compare(base, healthy, tol); len(bad) != 0 {
		t.Fatalf("healthy tuned candidate flagged: %v", bad)
	}

	regressed := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188, TunedSpeedup: 1.0},
		{Config: "2d-flat", AllocsPerOp: 425, BatchSpeedup: 54, TunedSpeedup: 0.91},
	}}
	bad := compare(base, regressed, tol)
	if len(bad) != 1 || !strings.Contains(bad[0], "tuned_speedup") || !strings.Contains(bad[0], "2d-flat") {
		t.Fatalf("sub-1x tuned_speedup not flagged: %v", bad)
	}

	// A candidate that stopped measuring tuning (field 0, e.g. an old
	// generator) is not compared — absence is handled by the committed-
	// baseline schema test, not this gate.
	unmeasured := &report{Results: []result{
		{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188},
		{Config: "2d-flat", AllocsPerOp: 425, BatchSpeedup: 54},
	}}
	if bad := compare(base, unmeasured, tol); len(bad) != 0 {
		t.Fatalf("unmeasured tuned_speedup flagged: %v", bad)
	}
}

// TestWarnCrossHost: differing core counts between baseline and
// candidate warn without failing — the wall-clock columns are not
// directly comparable, but a laptop regenerating a CI-host baseline
// must not be told its tree regressed.
func TestWarnCrossHost(t *testing.T) {
	row := result{Config: "1d-flat", AllocsPerOp: 170, BatchSpeedup: 188}
	base := &report{Host: &hostInfo{NumCPU: 8}, Results: []result{row}}
	cand := &report{Host: &hostInfo{NumCPU: 2}, Results: []result{row}}
	warn := warnings(base, cand)
	if len(warn) != 1 || !strings.Contains(warn[0], "8 cpus") || !strings.Contains(warn[0], "2") {
		t.Fatalf("cross-host comparison not warned: %v", warn)
	}
	if bad := compare(base, cand, defaultTolerances()); len(bad) != 0 {
		t.Fatalf("cross-host warning escalated to failure: %v", bad)
	}
	if warn := warnings(base, base); len(warn) != 0 {
		t.Fatalf("same-host comparison warned: %v", warn)
	}
	// Hostless reports (pre-PR-8 baselines) never warn.
	if warn := warnings(&report{Results: []result{row}}, cand); len(warn) != 0 {
		t.Fatalf("hostless baseline warned: %v", warn)
	}
}
