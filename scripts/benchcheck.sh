#!/usr/bin/env bash
# benchcheck.sh — the bench-regression gate: regenerate the BENCH
# trajectory into a temp file with `bfsbench -bench-out` and compare it
# against the committed BENCH_bfs.json with scripts/benchcmp. Fails if
# steady-state allocs/op grows or batch_speedup drops beyond tolerance,
# and on multicore runners if parallel_efficiency falls under its floor
# (the collective-engine serialization canary); differing core counts
# between baseline and runner only warn.
#
# This is minutes of wall clock (each configuration times a 16-search
# batch against 16 full rebuilds), so ci.sh only runs it when
# CI_BENCHCHECK=1; the comparison logic itself is unit-tested in
# scripts/benchcmp and runs in the fast tier-1 suite.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="${BENCHCHECK_BASELINE:-BENCH_bfs.json}"
if [ ! -f "$baseline" ]; then
    echo "benchcheck: baseline $baseline not found" >&2
    exit 2
fi
# Regenerate at the baseline's own scale so the comparison is
# like-for-like.
scale=$(grep -m1 '"scale"' "$baseline" | grep -oE '[0-9]+')

tmp=$(mktemp -t benchcheck.XXXXXX.json)
trap 'rm -f "$tmp"' EXIT

echo "== benchcheck: regenerating trajectory (scale $scale) =="
go run ./cmd/bfsbench -bench-out "$tmp" -bench-scale "$scale" >/dev/null

echo "== benchcheck: comparing against $baseline =="
go run ./scripts/benchcmp -baseline "$baseline" -candidate "$tmp"
