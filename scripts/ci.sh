#!/usr/bin/env bash
# ci.sh — the repository's tier-1 gate plus hygiene checks:
# docs references, formatting, vet, build, full tests, and a
# one-iteration benchmark smoke pass over the BFS level loops.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== docs gate =="
# Every documentation file the public package doc (pbfs.go) or the
# README points readers at must exist: a dangling reference is a broken
# front door.
missing=0
for src in pbfs.go README.md; do
    # Match whole repo-relative references (letters, digits, _, -, .,
    # and path separators), checked relative to the repo root.
    for ref in $(grep -oE '[A-Za-z0-9][A-Za-z0-9_./-]*\.md' "$src" | sort -u); do
        if [ ! -f "$ref" ]; then
            echo "$src references missing file: $ref" >&2
            missing=1
        fi
    done
done
if [ "$missing" -ne 0 ]; then
    exit 1
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt required for:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== race smoke (session reuse + collective substrate) =="
# Small-scale race check over the paths where goroutine ranks, worker
# pools, and cross-search arenas interlock: the session-reuse tests at
# the facade and the cluster substrate's own suite.
go test -race -run 'Session' .
go test -race ./internal/cluster ./internal/smp

echo "== bench smoke (BFS level loops, 1 iteration) =="
go test -run '^$' -bench=BFS -benchtime=1x -benchmem .

echo "CI OK"
