#!/usr/bin/env bash
# ci.sh — the repository's tier-1 gate plus hygiene checks: docs
# references, shellcheck, formatting, vet, build, full tests, a race
# smoke over the concurrency-heavy paths, and a one-iteration benchmark
# smoke pass over the BFS level loops. `.github/workflows/ci.yml` runs
# exactly this script on every push and pull request; CI_BENCHCHECK=1
# additionally runs the bench-regression gate (scripts/benchcheck.sh),
# which is minutes of wall clock and has its own CI job.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== docs gate =="
# Every documentation file the public package doc (pbfs.go) or the
# README points readers at must exist: a dangling reference is a broken
# front door.
missing=0
for src in pbfs.go README.md; do
    # Match whole repo-relative references (letters, digits, _, -, .,
    # and path separators), checked relative to the repo root.
    for ref in $(grep -oE '[A-Za-z0-9][A-Za-z0-9_./-]*\.md' "$src" | sort -u); do
        if [ ! -f "$ref" ]; then
            echo "$src references missing file: $ref" >&2
            missing=1
        fi
    done
done
if [ "$missing" -ne 0 ]; then
    exit 1
fi

echo "== shellcheck =="
# Lint every shell script; skipped (not failed) where shellcheck is not
# installed, so the gate stays runnable on minimal dev machines while
# the GitHub runners (which ship shellcheck) enforce it.
if command -v shellcheck >/dev/null 2>&1; then
    shellcheck scripts/*.sh
else
    echo "shellcheck not installed; skipping"
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt required for:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
# -shuffle=on randomizes test and subtest execution order, so hidden
# inter-test state (shared arenas, package-level caches) surfaces in CI
# instead of in a user's tree; a failing run prints the shuffle seed
# for replay.
go test -shuffle=on ./...

echo "== race smoke (session reuse + collective substrate) =="
# Small-scale race check over the paths where goroutine ranks, worker
# pools, and cross-search arenas interlock: the session-reuse and
# rectangular-grid tests at the facade, the randomized conformance
# harness (-short trims its graph stream; it drives every driver's
# nonblocking overlap pipeline), the cluster substrate's own suite
# (the parallel rendezvous engine — including the jittered
# blocking/nonblocking stress schedules in rendezvous_stress_test.go,
# which skew goroutine interleavings across grids and subcommunicators
# and assert bit-identical simulated figures — plus the nonblocking
# post/wait collectives), and the 2D driver's rectangular
# transpose/partitioned-bitmap/overlap paths.
go test -race -run 'Session|CrossShape|RectGrid' .
go test -race -short -run 'Conformance' .
go test -race ./internal/cluster ./internal/smp
go test -race -run 'Rect|Overlap' ./internal/bfs2d

echo "== race smoke (bit-parallel multi-source kernels) =="
# The MS-BFS batch path: word-wide mask kernels and merges, the batched
# 1D/2D drivers (whose hybrid variants fan the mask planes out over the
# worker pools), and the session-level batch serving surface including
# the chunked >64-source path exercised by the facade tests.
go test -race -run 'Mask|Batch' ./internal/spmat ./internal/spvec ./internal/bits
go test -race -run 'RunBatch' ./internal/bfs1d ./internal/bfs2d
go test -race -run 'BFSBatch' .

echo "== race smoke (batching query server) =="
# The serving layer is the most goroutine-dense surface in the tree:
# HTTP handlers push into per-graph queues while each graph's dispatch
# loop forms batches, a session pool executes them, the result cache
# and single-flight riders hand planes across goroutines, and Shutdown
# drains all of it at once. The full package runs under -race (it is
# fast), which covers the shutdown-under-load test asserting no
# admitted request is dropped without a response, plus the v1
# deterministic fake-clock suites: cache/coalesce/LRU semantics, the
# closed rejection-reason set, deadline-aware dispatch, and the
# 1024-query Zipf load test over two graphs (cross-graph isolation,
# zero responses completed past their deadline, serial-oracle
# distances).
go test -race ./internal/serve

echo "== counterfactual determinism smoke =="
# The decision-replay regret table derives entirely from the simulated
# clock, so two invocations must produce identical bytes — the property
# the auto-tuner's regret accounting (and the tuned_speedup gate in
# scripts/benchcmp) relies on. A diff here means wall-clock time,
# iteration order, or other nondeterminism leaked into the replay path.
cf_a=$(mktemp) && cf_b=$(mktemp)
trap 'rm -f "$cf_a" "$cf_b"' EXIT
go run ./cmd/bfsbench -counterfactual -bench-scale 10 >"$cf_a"
go run ./cmd/bfsbench -counterfactual -bench-scale 10 >"$cf_b"
if ! diff -u "$cf_a" "$cf_b"; then
    echo "counterfactual replay output differs between runs (nondeterminism regression)" >&2
    exit 1
fi
echo "replay table deterministic ($(wc -l <"$cf_a") lines)"

echo "== bench smoke (BFS level loops, 1 iteration) =="
go test -run '^$' -bench=BFS -benchtime=1x -benchmem .

echo "== bench smoke (GOMAXPROCS axis) =="
# The same steady-state level loops pinned to one core: the parallel
# collective engine must stay correct when rank goroutines are forced
# to time-slice a single P (the degenerate schedule every arrival gate
# and wake token must survive), and keeping both axes exercised here
# means a reintroduced serialization point shows up as the 1-vs-all
# wall-clock gap collapsing — which the bench-regression job turns
# into a hard failure via the parallel_efficiency floor on multicore
# runners.
GOMAXPROCS=1 go test -run '^$' -bench='BFSLevelLoop(1D|2D)Flat$' -benchtime=1x .
go test -run '^$' -bench='BFSLevelLoop(1D|2D)Flat$' -benchtime=1x .

if [ "${CI_BENCHCHECK:-0}" = "1" ]; then
    echo "== bench-regression gate =="
    ./scripts/benchcheck.sh
fi

echo "CI OK"
