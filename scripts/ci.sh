#!/usr/bin/env bash
# ci.sh — the repository's tier-1 gate plus hygiene checks:
# formatting, vet, build, full tests, and a one-iteration benchmark
# smoke pass over the BFS level loops.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt required for:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== bench smoke (BFS level loops, 1 iteration) =="
go test -run '^$' -bench=BFS -benchtime=1x -benchmem .

echo "CI OK"
