// Package pbfs is a Go reproduction of "Parallel Breadth-First Search on
// Distributed Memory Systems" (Buluç & Madduri, SC 2011): distributed
// BFS with 1D vertex partitioning (Algorithm 2) and 2D sparse-matrix
// partitioning over a process grid (Algorithm 3), in flat and hybrid
// (multithreaded-rank) variants, plus the paper's comparators, workload
// generators, benchmark methodology and performance model. Traversal is
// direction-optimized by default (Options.Direction): the dense middle
// levels of low-diameter graphs run bottom-up, cutting the edges
// examined by an order of magnitude versus the paper's push-only loops.
//
// Ranks are goroutines over an MPI-like collective substrate; execution
// is real (full distributed dataflow, validated against a serial oracle)
// while time is simulated through the paper's Section 5 α-β cost model,
// so results are deterministic and machine-independent. See DESIGN.md for
// the architecture and EXPERIMENTS.md for the paper-vs-reproduction
// record.
//
// Quick start:
//
//	g, _ := pbfs.NewRMATGraph(16, 16, 42)
//	opt := pbfs.Options{Algorithm: pbfs.TwoDHybrid, Ranks: 16, Machine: "hopper"}
//	sess := pbfs.NewSession() // distributes once, reuses scratch across searches
//	defer sess.Close()
//	for _, src := range g.Sources(16, 1) {
//		res, _ := sess.Search(g, src, opt)
//		fmt.Println(res.Levels, res.SimTime)
//	}
//
// One-off searches can use g.BFS(src, opt), which opens and closes a
// private single-search session.
package pbfs

import (
	"fmt"

	"repro/internal/decis"
	"repro/internal/edgefile"
	"repro/internal/graph"
	"repro/internal/graph500"
	"repro/internal/rmat"
	"repro/internal/serial"
	"repro/internal/webgen"
)

// Algorithm selects a BFS implementation.
type Algorithm int

// The paper's four variants plus the two comparator codes.
const (
	OneDFlat Algorithm = iota
	OneDHybrid
	TwoDFlat
	TwoDHybrid
	Reference
	PBGL
)

// String returns the display name used in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case OneDFlat:
		return "1D Flat MPI"
	case OneDHybrid:
		return "1D Hybrid"
	case TwoDFlat:
		return "2D Flat MPI"
	case TwoDHybrid:
		return "2D Hybrid"
	case Reference:
		return "Graph500 reference"
	case PBGL:
		return "PBGL"
	}
	return "unknown"
}

// Unreached marks unreachable vertices in distance and parent arrays.
const Unreached = serial.Unreached

// Direction selects the per-level traversal policy of the distributed
// drivers (Beamer-style direction optimization).
type Direction int

const (
	// Auto, the default, applies the alpha/beta heuristic per level:
	// the small head and tail levels run top-down (push), the dense
	// middle levels bottom-up (pull), cutting the edges examined on
	// low-diameter graphs by roughly an order of magnitude. Results are
	// oracle-validated BFS trees regardless of the per-level choices.
	Auto Direction = iota
	// TopDownOnly forces the classic push-only level loop — the
	// configuration the source paper evaluates, and the baseline the
	// scanned-edge savings are measured against.
	TopDownOnly
	// BottomUpOnly forces the pull phase on every level; mainly a
	// measurement and testing configuration.
	BottomUpOnly
)

// String returns the direction policy name.
func (d Direction) String() string {
	switch d {
	case Auto:
		return "auto"
	case TopDownOnly:
		return "topdown"
	case BottomUpOnly:
		return "bottomup"
	}
	return "unknown"
}

// Graph is a graph ready for traversal and benchmarking. Graphs are
// undirected (symmetrized) unless built with NewDirectedGraph.
type Graph struct {
	el       *graph.EdgeList
	csr      *graph.CSR
	directed bool
	// family names the workload family the graph came from ("rmat",
	// "web", "edges", "file", "directed"): the granularity the
	// auto-tuner caches settings at, on the theory that graphs of one
	// family share degree structure and therefore tuned thresholds.
	family string
}

// NewRMATGraph generates a Graph 500 R-MAT graph (a=0.59, b=c=0.19,
// edge factor edges per vertex), randomly relabeled for load balance and
// symmetrized, exactly as the paper's synthetic instances.
func NewRMATGraph(scale, edgeFactor int, seed uint64) (*Graph, error) {
	el, err := rmat.Graph500(scale, edgeFactor, seed).GenerateUndirected()
	if err != nil {
		return nil, err
	}
	return fromEdgeList(el, "rmat")
}

// NewWebCrawlGraph generates a high-diameter (≈140 BFS levels) synthetic
// web crawl standing in for the paper's uk-union dataset.
func NewWebCrawlGraph(numVerts int64, seed uint64) (*Graph, error) {
	el, err := webgen.UKUnionLike(numVerts, seed).GenerateUndirected()
	if err != nil {
		return nil, err
	}
	return fromEdgeList(el, "web")
}

// NewGraphFromEdges builds a graph from explicit undirected edges; each
// pair {u, v} is stored in both directions.
func NewGraphFromEdges(numVerts int64, edges [][2]int64) (*Graph, error) {
	el := &graph.EdgeList{NumVerts: numVerts}
	for _, e := range edges {
		el.Edges = append(el.Edges, graph.Edge{U: e[0], V: e[1]})
	}
	return fromEdgeList(el.Symmetrize(), "edges")
}

// NewGraphFromFile loads a directed binary edge file written by
// cmd/graphgen and symmetrizes it.
func NewGraphFromFile(path string) (*Graph, error) {
	el, err := edgefile.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return fromEdgeList(el.Symmetrize(), "file")
}

// NewDirectedGraph builds a graph from directed edges without
// symmetrizing: BFS then follows edge direction, as the paper notes its
// approaches support ("the BFS approaches can work with directed graphs
// as well", Section 6). Validation of directed results checks distances
// against the serial oracle but skips the undirected level-geometry
// rule.
func NewDirectedGraph(numVerts int64, edges [][2]int64) (*Graph, error) {
	el := &graph.EdgeList{NumVerts: numVerts}
	for _, e := range edges {
		el.Edges = append(el.Edges, graph.Edge{U: e[0], V: e[1]})
	}
	g, err := fromEdgeList(el, "directed")
	if err != nil {
		return nil, err
	}
	g.directed = true
	return g, nil
}

func fromEdgeList(el *graph.EdgeList, family string) (*Graph, error) {
	csr, err := graph.BuildCSR(el, true)
	if err != nil {
		return nil, err
	}
	return &Graph{el: el, csr: csr, family: family}, nil
}

// NumVerts returns the vertex count.
func (g *Graph) NumVerts() int64 { return g.csr.NumVerts }

// NumEdges returns the number of undirected edges after deduplication.
func (g *Graph) NumEdges() int64 { return g.csr.NumEdges() / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int64) int64 { return g.csr.Degree(v) }

// Neighbors returns the sorted adjacency of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int64) []int64 { return g.csr.Neighbors(v) }

// Sources samples up to k Graph 500 search keys: distinct vertices of
// non-zero degree from the largest connected component. For directed
// graphs the component structure follows stored edge direction (forward
// reachability), so sampled keys are guaranteed useful but not
// necessarily mutually reachable.
func (g *Graph) Sources(k int, seed uint64) []int64 {
	return graph500.SelectSources(g.csr, k, seed)
}

// SerialBFS runs the single-threaded reference BFS (Algorithm 1).
func (g *Graph) SerialBFS(source int64) *Result {
	r := serial.BFS(g.csr, source)
	return &Result{
		Source: source, Dist: r.Dist, Parent: r.Parent,
		Levels:         r.MaxLevel(),
		TraversedEdges: r.EdgesTraversed(g.csr) / 2,
	}
}

// Validate checks a BFS result against the Graph 500 validation rules
// and an independently computed serial reference. For directed graphs
// the undirected edge-geometry rule does not apply; distances and tree
// structure are checked against the serial oracle instead.
func (g *Graph) Validate(res *Result) error {
	if res == nil {
		return fmt.Errorf("pbfs: nil result")
	}
	if g.directed {
		ref := serial.BFS(g.csr, res.Source)
		for v := range res.Dist {
			if res.Dist[v] != ref.Dist[v] {
				return fmt.Errorf("pbfs: directed validate: vertex %d dist %d != reference %d",
					v, res.Dist[v], ref.Dist[v])
			}
		}
		return nil
	}
	return graph500.ValidateOutput(g.csr, res.Source, res.Dist, res.Parent)
}

// Directed reports whether the graph was built without symmetrization.
func (g *Graph) Directed() bool { return g.directed }

// Family names the workload family the graph came from ("rmat", "web",
// "edges", "file", "directed") — the key the session's auto-tuner
// caches settings under.
func (g *Graph) Family() string { return g.family }

// Result is a BFS output with its simulated execution profile.
type Result struct {
	Source int64
	Dist   []int64 // BFS level per vertex, Unreached if unreachable
	Parent []int64 // BFS tree parent per vertex, Unreached if unreachable
	Levels int64   // number of frontier expansions that discovered vertices
	// TraversedEdges counts undirected edges incident to reached
	// vertices: the TEPS denominator. It depends only on the reached
	// set, so it is identical across direction policies.
	TraversedEdges int64
	// ScannedTopDown and ScannedBottomUp count the adjacency entries
	// the traversal actually examined, split by phase. A TopDownOnly
	// run scans 2*TraversedEdges entries (both directions of every
	// edge incident to the reached set); direction optimization shows
	// up as ScannedTopDown+ScannedBottomUp dropping well below that.
	ScannedTopDown  int64
	ScannedBottomUp int64
	// SimTime and CommTime are simulated machine seconds (zero when no
	// Machine was configured).
	SimTime  float64
	CommTime float64
	// CommByPhase breaks communication down by collective tag
	// (a2a/expand/fold/transpose/bitmap/allreduce).
	CommByPhase map[string]float64
	// SentWords and RecvWords total the words every rank entered into
	// and received from collectives: the modeled communication volume.
	// Options.Overlap changes when the words move, never how many.
	SentWords, RecvWords int64
	// LevelFrontier, when Options.Trace is set, holds the number of
	// vertices discovered at each level (the frontier-size profile).
	LevelFrontier []int64
	// LevelScanned and LevelBottomUp, when Options.Trace is set on a
	// 1D or 2D run, hold the adjacency entries examined and the
	// traversal direction of every executed iteration (one more entry
	// than LevelFrontier: the final iteration scans but discovers
	// nothing).
	LevelScanned  []int64
	LevelBottomUp []bool
	// LevelCommWords, when Options.Trace is set on a 1D or 2D run,
	// holds the words entered into collectives at each executed
	// iteration, summed over ranks: the per-level communication volume
	// profile, identical for every Options.Overlap setting.
	LevelCommWords []int64
	// Decisions, when Options.Trace is set on a 1D or 2D run, holds
	// the policy decisions the search took — per-level direction
	// switches and overlap-gate verdicts, plus the grid-shape choice
	// when a 2D run derived its grid — each with the globally agreed
	// inputs the heuristic saw and the alternatives it rejected.
	// Session.Counterfactual replays them.
	Decisions []decis.Decision
}

// TEPS returns the traversed-edges-per-second rate of the result.
func (r *Result) TEPS() float64 {
	return graph500.TEPS(r.TraversedEdges, r.SimTime)
}
